(* Tests for the fault-tolerant NXE: deterministic fault injection
   (Bunshin_faults), hung/crashed-variant detection, quarantine with N−1
   degradation, restart, and the fail-stop policy.  Companion to
   test_nxe.ml, which covers the fault-free engine. *)

module M = Bunshin_machine.Machine
module Sc = Bunshin_syscall.Syscall
module Trace = Bunshin_program.Trace
module Nxe = Bunshin_nxe.Nxe
module Faults = Bunshin_faults.Faults
module F = Bunshin_forensics.Forensics

let work c = Trace.Work { func = "f"; cost = c }
let rd i = Trace.Sys (Sc.read ~args:[ 3L; Int64.of_int i ] ())

(* The standard chaos workload: 12 synchronized syscalls per variant. *)
let units = 12
let chaos_trace () = List.concat (List.init units (fun i -> [ work 5.0; rd i ]))
let names n = List.init n (fun i -> Printf.sprintf "v%d" i)

let coverage3 = [ [ "asan"; "ubsan" ]; [ "asan"; "msan" ]; [ "msan"; "lowfat" ] ]

let policy ?(hb = 100.0) ?(backoff = 20.0) p =
  { Nxe.policy = p; heartbeat_timeout = hb; restart_backoff = backoff }

let config ?hb ?backoff p =
  { Nxe.default_config with fault_policy = policy ?hb ?backoff p }

let run ?(n = 3) ?(coverage = coverage3) ~config ~faults () =
  Nxe.run_traces ~config ~faults ~coverage ~names:(names n)
    (List.init n (fun _ -> chaos_trace ()))

let stall_v1 = Faults.make [ { Faults.i_variant = 1; i_at = 4; i_kind = Faults.Stall } ]
let die_v2 = Faults.make [ { Faults.i_variant = 2; i_at = 7; i_kind = Faults.Die } ]

let finished r = r.Nxe.outcome = `All_finished
let check_time = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Plans *)

let test_plan_deterministic () =
  let p1 = Faults.plan ~seed:7 ~variants:3 ~count:10 () in
  let p2 = Faults.plan ~seed:7 ~variants:3 ~count:10 () in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check int) "count honoured" 10 (List.length p1.Faults.p_injections);
  List.iter
    (fun i ->
      Alcotest.(check bool) "followers only" true (i.Faults.i_variant >= 1);
      Alcotest.(check bool) "victim in range" true (i.Faults.i_variant < 3);
      Alcotest.(check bool) "ordinal in range" true
        (i.Faults.i_at >= 0 && i.Faults.i_at < 8))
    p1.Faults.p_injections;
  (* Across a pool of seeds the stream must actually vary. *)
  let plans = List.init 16 (fun s -> Faults.plan ~seed:s ~variants:4 ~count:4 ()) in
  Alcotest.(check bool) "seeds differ" true
    (List.length (List.sort_uniq compare plans) > 1)

let test_plan_validation () =
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  Alcotest.(check bool) "followers_only needs 2 variants" true
    (invalid (fun () -> Faults.plan ~seed:0 ~variants:1 ()));
  Alcotest.(check bool) "syscalls >= 1" true
    (invalid (fun () -> Faults.plan ~seed:0 ~variants:3 ~syscalls:0 ()));
  Alcotest.(check bool) "count >= 0" true
    (invalid (fun () -> Faults.plan ~seed:0 ~variants:3 ~count:(-1) ()));
  Alcotest.(check bool) "describe is human" true
    (String.length (Faults.describe { Faults.i_variant = 2; i_at = 4; i_kind = Faults.Stall }) > 0)

let test_run_validation () =
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  let bad_victim = Faults.make [ { Faults.i_variant = 9; i_at = 0; i_kind = Faults.Die } ] in
  Alcotest.(check bool) "victim out of range" true
    (invalid (fun () -> run ~config:(config Nxe.Quarantine) ~faults:bad_victim ()));
  Alcotest.(check bool) "negative heartbeat" true
    (invalid (fun () -> run ~config:(config ~hb:(-1.0) Nxe.Quarantine) ~faults:stall_v1 ()));
  Alcotest.(check bool) "negative backoff" true
    (invalid (fun () ->
         run ~config:(config ~backoff:(-5.0) Nxe.Restart_once) ~faults:stall_v1 ()));
  Alcotest.(check bool) "coverage length" true
    (invalid (fun () ->
         run ~coverage:[ [ "asan" ] ] ~config:(config Nxe.Quarantine) ~faults:stall_v1 ()))

(* ------------------------------------------------------------------ *)
(* Quarantine: hung variant detected by heartbeat, N−1 keep running *)

let test_stall_quarantine () =
  let r = run ~config:(config Nxe.Quarantine) ~faults:stall_v1 () in
  Alcotest.(check bool) "group finished without v1" true (finished r);
  Alcotest.(check (list int)) "v1 quarantined" [ 1 ] (Nxe.quarantined_variants r);
  (match List.nth r.Nxe.variant_status 1 with
  | Nxe.Quarantined { q_time; q_cause = Nxe.Missed_heartbeat silence; q_restarts } ->
      check_time "detected at the watchdog sweep" 150.0 q_time;
      Alcotest.(check bool) "observed silence >= timeout" true (silence >= 100.0);
      Alcotest.(check int) "no restarts under Quarantine" 0 q_restarts
  | _ -> Alcotest.fail "expected Quarantined/Missed_heartbeat");
  (* The survivors executed their FULL streams: degradation, not abort. *)
  Alcotest.(check int) "leader executed everything" units r.Nxe.executed_syscalls;
  check_time "run ends when the survivors do" 203.0 r.Nxe.total_time;
  (* One benign Fault_isolation incident, none fatal. *)
  Alcotest.(check int) "one incident" 1 (List.length r.Nxe.fault_incidents);
  Alcotest.(check bool) "no abort incident" true (r.Nxe.incident = None);
  (* asan+ubsan (v0) ∪ msan+lowfat (v2) still covers v1's asan+msan. *)
  Alcotest.(check (list string)) "no coverage lost" [] r.Nxe.coverage_loss;
  (* The watchdog histogram saw real sweeps. *)
  let hb_samples =
    match List.assoc_opt "heartbeat_wait_us" r.Nxe.histograms with
    | Some buckets -> List.fold_left (fun a (_, c) -> a + c) 0 buckets
    | None -> 0
  in
  Alcotest.(check bool) "heartbeat histogram populated" true (hb_samples > 0)

let test_quarantine_incident_forensics () =
  let r = run ~config:(config Nxe.Quarantine) ~faults:stall_v1 () in
  match r.Nxe.fault_incidents with
  | [ inc ] ->
      Alcotest.(check bool) "classified as fault isolation" true
        (inc.F.inc_mismatch = F.Fault_isolation);
      Alcotest.(check bool) "victim blamed" true (inc.F.inc_blamed = 1);
      Alcotest.(check bool) "text mentions fault isolation" true
        (let t = String.lowercase_ascii (F.to_text inc) in
         let needle = "fault isolation" in
         let n = String.length needle in
         let rec has i = i + n <= String.length t && (String.sub t i n = needle || has (i + 1)) in
         has 0);
      Alcotest.(check bool) "incident roundtrips json" true
        (F.of_json (F.to_json inc) = Ok inc)
  | l -> Alcotest.failf "expected exactly one incident, got %d" (List.length l)

let test_die_quarantine_loses_coverage () =
  let r = run ~config:(config Nxe.Quarantine) ~faults:die_v2 () in
  Alcotest.(check bool) "group finished without v2" true (finished r);
  Alcotest.(check (list int)) "v2 quarantined" [ 2 ] (Nxe.quarantined_variants r);
  (match List.nth r.Nxe.variant_status 2 with
  | Nxe.Quarantined { q_cause = Nxe.Benign_death; _ } -> ()
  | _ -> Alcotest.fail "expected Quarantined/Benign_death");
  (* v2 was the only lowfat carrier: its retirement is a measurable hole. *)
  Alcotest.(check (list string)) "lowfat lost" [ "lowfat" ] r.Nxe.coverage_loss;
  Alcotest.(check int) "leader unaffected" units r.Nxe.executed_syscalls

(* ------------------------------------------------------------------ *)
(* Abort_on_fault: fail-stop on the same seed *)

let test_stall_abort_on_fault () =
  let r = run ~config:(config Nxe.Abort_on_fault) ~faults:stall_v1 () in
  (match r.Nxe.outcome with
  | `Aborted a -> Alcotest.(check int) "hung variant named" 1 a.Nxe.al_variant
  | `All_finished -> Alcotest.fail "fail-stop policy must abort");
  (* The abort cuts the leader short: only the pre-fault window ran. *)
  Alcotest.(check bool) "leader stopped early" true (r.Nxe.executed_syscalls < units);
  check_time "torn down at detection" 150.0 r.Nxe.total_time;
  (* Fatal faults go in report.incident, not the benign list. *)
  Alcotest.(check bool) "abort incident present" true
    (match r.Nxe.incident with
    | Some inc -> inc.F.inc_mismatch = F.Fault_isolation && inc.F.inc_blamed = 1
    | None -> false);
  Alcotest.(check int) "no benign incidents" 0 (List.length r.Nxe.fault_incidents)

let test_leader_fault_always_aborts () =
  (* No follower promotion: a leader fault is fatal under ANY policy. *)
  let faults = Faults.make [ { Faults.i_variant = 0; i_at = 3; i_kind = Faults.Stall } ] in
  let r = run ~config:(config Nxe.Quarantine) ~faults () in
  (match r.Nxe.outcome with
  | `Aborted a -> Alcotest.(check int) "leader named" 0 a.Nxe.al_variant
  | `All_finished -> Alcotest.fail "leader fault must abort");
  Alcotest.(check (list int)) "nobody quarantined" [] (Nxe.quarantined_variants r)

let test_corrupt_aborts_under_any_policy () =
  (* Argument corruption is a divergence — a security signal, never a
     benign fault to be absorbed. *)
  let faults =
    Faults.make
      [ { Faults.i_variant = 1; i_at = 5; i_kind = Faults.Corrupt { c_arg = 1; c_delta = 7L } } ]
  in
  List.iter
    (fun p ->
      let r = run ~config:(config p) ~faults () in
      match r.Nxe.outcome with
      | `Aborted a ->
          Alcotest.(check int) "corrupted variant blamed" 1 a.Nxe.al_variant;
          Alcotest.(check bool) "divergence forensics attached" true (r.Nxe.incident <> None)
      | `All_finished -> Alcotest.fail "corruption must abort")
    [ Nxe.Abort_on_fault; Nxe.Quarantine; Nxe.Restart_once ]

let test_delay_survives () =
  (* Slow is not dead: delays below the heartbeat threshold are absorbed
     by lockstep with zero quarantines under every policy. *)
  let faults =
    Faults.make
      [ { Faults.i_variant = 1; i_at = 2; i_kind = Faults.Delay { d_each = 30.0; d_count = 3 } } ]
  in
  List.iter
    (fun p ->
      let r = run ~config:(config p) ~faults () in
      Alcotest.(check bool) "finished" true (finished r);
      Alcotest.(check (list int)) "no quarantine" [] (Nxe.quarantined_variants r);
      Alcotest.(check bool) "all healthy" true
        (List.for_all (fun s -> s = Nxe.Healthy) r.Nxe.variant_status))
    [ Nxe.Abort_on_fault; Nxe.Quarantine; Nxe.Restart_once ]

(* ------------------------------------------------------------------ *)
(* Restart_once *)

let test_restart_once_recovers () =
  let r = run ~config:(config Nxe.Restart_once) ~faults:stall_v1 () in
  Alcotest.(check bool) "group finished" true (finished r);
  Alcotest.(check (list int)) "not quarantined at the end" [] (Nxe.quarantined_variants r);
  (match List.nth r.Nxe.variant_status 1 with
  | Nxe.Recovered { q_time; r_time; _ } ->
      check_time "quarantined at detection" 150.0 q_time;
      Alcotest.(check bool) "recovered later" true (r_time > q_time)
  | _ -> Alcotest.fail "expected Recovered");
  (* The quarantine that preceded the restart is still on the record. *)
  Alcotest.(check int) "incident preserved" 1 (List.length r.Nxe.fault_incidents);
  Alcotest.(check (list string)) "coverage restored" [] r.Nxe.coverage_loss

(* ------------------------------------------------------------------ *)
(* Watchdog off / defaults *)

let test_watchdog_off_stall_just_slows () =
  (* heartbeat_timeout = infinity (the default): a stalled follower is
     never declared hung; the run waits out the stall and completes. *)
  let r = run ~config:(config ~hb:infinity Nxe.Quarantine) ~faults:stall_v1 () in
  Alcotest.(check bool) "finished eventually" true (finished r);
  Alcotest.(check (list int)) "no quarantine" [] (Nxe.quarantined_variants r);
  Alcotest.(check bool) "paid the stall" true (r.Nxe.total_time >= 1e9)

let test_no_faults_reports_are_clean () =
  let r = run ~config:(config Nxe.Quarantine) ~faults:Faults.none () in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check bool) "all healthy" true
    (List.for_all (fun s -> s = Nxe.Healthy) r.Nxe.variant_status);
  Alcotest.(check int) "no incidents" 0 (List.length r.Nxe.fault_incidents);
  Alcotest.(check (list string)) "no loss" [] r.Nxe.coverage_loss

(* ------------------------------------------------------------------ *)
(* Attack detection with a quarantined peer *)

let test_divergence_still_detected_with_quarantined_peer () =
  (* v1 hangs and is quarantined; v2 then diverges on syscall arguments.
     The degraded 2-variant group must still catch it and blame v2. *)
  let diverging =
    List.concat
      (List.init units (fun i ->
           let arg = if i >= 9 then 6660L else Int64.of_int i in
           [ work 5.0; Trace.Sys (Sc.read ~args:[ 3L; arg ] ()) ]))
  in
  let r =
    Nxe.run_traces
      ~config:(config Nxe.Quarantine)
      ~faults:stall_v1 ~coverage:coverage3 ~names:(names 3)
      [ chaos_trace (); chaos_trace (); diverging ]
  in
  (match r.Nxe.outcome with
  | `Aborted a -> Alcotest.(check int) "divergent variant blamed" 2 a.Nxe.al_variant
  | `All_finished -> Alcotest.fail "N−1 group must still detect divergence");
  Alcotest.(check (list int)) "v1 quarantined first" [ 1 ] (Nxe.quarantined_variants r);
  Alcotest.(check bool) "divergence forensics attached" true (r.Nxe.incident <> None)

(* ------------------------------------------------------------------ *)
(* Determinism *)

let test_chaos_runs_are_deterministic () =
  let strip r =
    (* machine_stats carries no per-run noise either, but comparing the
       whole record keeps the check honest. *)
    ( r.Nxe.outcome,
      r.Nxe.total_time,
      r.Nxe.variant_status,
      r.Nxe.coverage_loss,
      r.Nxe.executed_syscalls,
      r.Nxe.fault_incidents,
      r.Nxe.histograms )
  in
  List.iter
    (fun (label, cfg, faults) ->
      let a = run ~config:cfg ~faults () in
      let b = run ~config:cfg ~faults () in
      Alcotest.(check bool) (label ^ " deterministic") true (strip a = strip b))
    [
      ("stall/quarantine", config Nxe.Quarantine, stall_v1);
      ("stall/abort", config Nxe.Abort_on_fault, stall_v1);
      ("stall/restart", config Nxe.Restart_once, stall_v1);
      ("die/quarantine", config Nxe.Quarantine, die_v2);
      ("seeded plan", config Nxe.Quarantine, Faults.plan ~seed:11 ~variants:3 ~count:2 ());
    ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "bunshin_faults"
    [
      ( "plans",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "run validation" `Quick test_run_validation;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "stall detected, N-1 finish" `Quick test_stall_quarantine;
          Alcotest.test_case "incident forensics" `Quick test_quarantine_incident_forensics;
          Alcotest.test_case "death loses coverage" `Quick test_die_quarantine_loses_coverage;
        ] );
      ( "policies",
        [
          Alcotest.test_case "abort on fault" `Quick test_stall_abort_on_fault;
          Alcotest.test_case "leader fault fatal" `Quick test_leader_fault_always_aborts;
          Alcotest.test_case "corruption always aborts" `Quick test_corrupt_aborts_under_any_policy;
          Alcotest.test_case "delay survives" `Quick test_delay_survives;
          Alcotest.test_case "restart once recovers" `Quick test_restart_once_recovers;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "off by default" `Quick test_watchdog_off_stall_just_slows;
          Alcotest.test_case "clean report without faults" `Quick test_no_faults_reports_are_clean;
        ] );
      ( "security",
        [
          Alcotest.test_case "detects with quarantined peer" `Quick
            test_divergence_still_detected_with_quarantined_peer;
        ] );
      ( "determinism",
        [ Alcotest.test_case "identical reports" `Quick test_chaos_runs_are_deterministic ] );
    ]
