(* Tests for the causal-span recorder (lib/trace_ctx) and its engine
   integration: span-tree well-formedness over random cluster configs,
   cross-node connectivity, neutrality (attaching a recorder changes no
   report and no incident signature), and the critical-path attribution's
   straggler cross-check against the lib/profile collector. *)

module Trace = Bunshin_program.Trace
module Sc = Bunshin_syscall.Syscall
module Nxe = Bunshin_nxe.Nxe
module Cluster = Bunshin_cluster.Cluster
module Tx = Bunshin_trace_ctx.Trace_ctx
module Profile = Bunshin_profile.Profile

let work c = Trace.Work { func = "f"; cost = c }
let wr i = Trace.Sys (Sc.write ~args:[ 1L; Int64.of_int i ] ())
let names n = List.init n (fun i -> Printf.sprintf "v%d" i)

(* Variant [v] pays [base * (1 + skew*v)] of compute per synchronized
   write: [v = n-1] is the designed straggler. *)
let skewed_traces ?(units = 20) ?(base = 30.0) ?(skew = 0.4) n =
  List.init n (fun v ->
      List.concat
        (List.init units (fun i ->
             [ work (base *. (1.0 +. (skew *. float_of_int v))); wr i ])))

let ok_or_fail = function Ok () -> () | Error e -> Alcotest.fail e

(* The dominant straggler according to the trace recorder: the first
   [Straggler] entry of the aggregated attribution (sorted by attributed
   time, descending); [-1] when no rendezvous was compute-bound. *)
let top_straggler_of_paths paths =
  let rec first = function
    | [] -> -1
    | { Tx.ca_cause = Tx.Straggler v; _ } :: _ -> v
    | _ :: rest -> first rest
  in
  first (Tx.attribute paths)

(* ------------------------------------------------------------------ *)
(* Single-host engine *)

let test_nxe_spans_well_formed () =
  let tc = Tx.create () in
  let n = 3 in
  let r =
    Nxe.run_traces
      ~config:{ Nxe.selective with Nxe.tracer = Some tc }
      ~names:(names n) (skewed_traces n)
  in
  Alcotest.(check bool) "finished" true (r.Nxe.outcome = `All_finished);
  ok_or_fail (Tx.well_formed tc);
  Alcotest.(check bool) "spans recorded" true (Tx.used tc > 0);
  Alcotest.(check int) "nothing dropped" 0 (Tx.dropped tc);
  (* Every synchronized syscall became one fully retired rendezvous tree. *)
  Alcotest.(check int) "one critical path per synced syscall"
    r.Nxe.synced_syscalls
    (List.length (Tx.critical_paths tc))

let test_nxe_report_neutral () =
  let n = 3 in
  let run tracer =
    Nxe.run_traces
      ~config:{ Nxe.selective with Nxe.tracer }
      ~names:(names n) (skewed_traces n)
  in
  let plain = run None in
  let tc = Tx.create () in
  let traced = run (Some tc) in
  Alcotest.(check bool) "report bit-identical with tracing on" true (plain = traced);
  Alcotest.(check bool) "recorder saw the run" true (Tx.used tc > 0)

let test_straggler_matches_profiler_single_node () =
  (* Same run, both observers attached: the profiler's most-frequent
     straggler and the critical-path attribution's dominant straggler
     must name the same variant (the designed one). *)
  let n = 3 in
  let tc = Tx.create () in
  let collector = Profile.Collector.create n in
  let r =
    Nxe.run_traces
      ~config:{ Nxe.selective with Nxe.tracer = Some tc }
      ~profile:collector ~names:(names n) (skewed_traces n)
  in
  Alcotest.(check bool) "finished" true (r.Nxe.outcome = `All_finished);
  let profiled = Profile.Collector.top_straggler collector in
  let traced = top_straggler_of_paths (Tx.critical_paths tc) in
  Alcotest.(check int) "designed straggler" (n - 1) profiled;
  Alcotest.(check int) "tracer agrees with profiler" profiled traced

(* ------------------------------------------------------------------ *)
(* Cluster: connectivity and neutrality *)

let test_cluster_trees_span_all_nodes () =
  let n = 3 in
  let tc = Tx.create () in
  let config =
    { Cluster.default_config with
      Cluster.nodes = 4; ship = Cluster.Selective; tracer = Some tc }
  in
  let r = Cluster.run_traces ~config ~names:(names n) (skewed_traces n) in
  Alcotest.(check bool) "finished" true (r.Cluster.outcome = `All_finished);
  ok_or_fail (Tx.well_formed tc);
  let traces = Tx.traces tc in
  Alcotest.(check bool) "one trace per synced syscall" true
    (List.length traces = r.Cluster.synced_syscalls);
  (* Round-robin placement puts v0 on node 0, v1 on node 1, v2 on node 2:
     every rendezvous tree must connect exactly those three machines. *)
  List.iter
    (fun tr ->
      Alcotest.(check int)
        (Printf.sprintf "trace %d spans the occupied nodes" tr)
        3 (Tx.nodes_spanned tc tr))
    traces;
  (* And the wire shows up inside the trees as annotated link spans. *)
  let has_net_msg =
    List.exists
      (fun tr ->
        List.exists (fun s -> s.Tx.sp_kind = Tx.Net_msg) (Tx.tree tc tr))
      traces
  in
  Alcotest.(check bool) "link messages recorded in-tree" true has_net_msg

let test_cluster_report_neutral () =
  let n = 3 in
  let run tracer =
    let config =
      { Cluster.default_config with
        Cluster.nodes = 3; ship = Cluster.Selective; tracer }
    in
    Cluster.run_traces ~config ~names:(names n) (skewed_traces ~units:10 n)
  in
  let plain = run None in
  let tc = Tx.create () in
  let traced = run (Some tc) in
  Alcotest.(check bool) "cluster report bit-identical with tracing on" true
    (plain = traced);
  Alcotest.(check bool) "recorder saw the run" true (Tx.used tc > 0)

let test_cluster_incident_signature_neutral () =
  (* A remote argument divergence must produce the same verdict — same
     incident signature — whether or not the span recorder is attached. *)
  let leader = [ work 10.0; wr 42 ] in
  let follower = [ work 10.0; Trace.Sys (Sc.write ~args:[ 1L; 666L ] ()) ] in
  let run tracer =
    let config =
      { Cluster.default_config with
        Cluster.nodes = 2; ship = Cluster.Selective; tracer }
    in
    Cluster.run_traces ~config ~names:(names 2) [ leader; follower ]
  in
  let signature r =
    match r.Cluster.incident with
    | Some inc -> Cluster.incident_signature inc
    | None -> Alcotest.fail "divergence must attach forensics"
  in
  let plain = run None in
  let traced = run (Some (Tx.create ())) in
  Alcotest.(check bool) "both aborted" true
    (plain.Cluster.outcome <> `All_finished && traced.Cluster.outcome <> `All_finished);
  Alcotest.(check string) "incident signature identical with tracing on"
    (signature plain) (signature traced)

let test_cluster_straggler_matches_profiler () =
  (* The acceptance cross-check: with compute skew large enough to
     dominate the wire, the 4-node cluster's critical paths must blame
     the same variant the profiler names on a single-node run of the
     same fleet. *)
  let n = 3 in
  let traces () = skewed_traces ~units:12 ~base:100.0 ~skew:1.0 n in
  let collector = Profile.Collector.create n in
  let local =
    Nxe.run_traces ~config:Nxe.selective ~profile:collector ~names:(names n)
      (traces ())
  in
  Alcotest.(check bool) "local finished" true (local.Nxe.outcome = `All_finished);
  let tc = Tx.create () in
  let config =
    { Cluster.default_config with
      Cluster.nodes = 4; ship = Cluster.Selective; tracer = Some tc }
  in
  let r = Cluster.run_traces ~config ~names:(names n) (traces ()) in
  Alcotest.(check bool) "cluster finished" true (r.Cluster.outcome = `All_finished);
  let profiled = Profile.Collector.top_straggler collector in
  let traced = top_straggler_of_paths (Tx.critical_paths tc) in
  Alcotest.(check int) "designed straggler" (n - 1) profiled;
  Alcotest.(check int) "cluster critical path names the profiler's straggler"
    profiled traced

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_cluster_spans_well_formed =
  QCheck.Test.make ~name:"trace_ctx: cluster span forest well-formed" ~count:30
    QCheck.(
      quad (int_range 1 4) (int_range 0 2) (int_range 2 4) (int_range 3 10))
    (fun (nodes, ship_ix, n, units) ->
      let ship =
        match ship_ix with
        | 0 -> Cluster.Full_remote_lockstep
        | 1 -> Cluster.Selective
        | _ -> Cluster.Selective_replicated
      in
      let batch_slots = 1 + ((units * n) mod 16) in
      let tc = Tx.create () in
      let config =
        { Cluster.default_config with
          Cluster.nodes; ship; batch_slots; tracer = Some tc }
      in
      let r =
        Cluster.run_traces ~config ~names:(names n)
          (skewed_traces ~units ~skew:(0.1 *. float_of_int (1 + (units mod 5))) n)
      in
      r.Cluster.outcome = `All_finished
      && Tx.well_formed tc = Ok ()
      && List.length (Tx.traces tc) = r.Cluster.synced_syscalls)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "trace_ctx"
    [
      ( "nxe",
        [
          Alcotest.test_case "spans well-formed" `Quick test_nxe_spans_well_formed;
          Alcotest.test_case "report neutral" `Quick test_nxe_report_neutral;
          Alcotest.test_case "straggler matches profiler" `Quick
            test_straggler_matches_profiler_single_node;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "trees span all nodes" `Quick
            test_cluster_trees_span_all_nodes;
          Alcotest.test_case "report neutral" `Quick test_cluster_report_neutral;
          Alcotest.test_case "incident signature neutral" `Quick
            test_cluster_incident_signature_neutral;
          Alcotest.test_case "cluster straggler matches profiler" `Quick
            test_cluster_straggler_matches_profiler;
        ] );
      ("properties", qcheck [ prop_cluster_spans_well_formed ]);
    ]
