(* Tests for the extension features: basic-block-granularity distribution
   (§6), layout diversification, attack-window exploitation, the appendix
   model, and profile serialization. *)

open Bunshin
module E = Experiments
module B = Builder

(* ------------------------------------------------------------------ *)
(* Basic-block granularity: cost-model level *)

let test_block_unit_naming () =
  Alcotest.(check string) "unit name" "f#3" (Program.block_unit "f" 3)

let test_variant_block_fraction () =
  let prog = (Spec.find "bzip2").Bench.prog in
  (* A variant holding 2 of hot's 4 block groups pays ~half its checks. *)
  let hot = "bzip2_hot" in
  let full = Program.full [ Sanitizer.asan ] prog in
  let none = Program.variant [ Sanitizer.asan ] ~checked:[] prog in
  let half =
    Program.variant [ Sanitizer.asan ] ~block_split:4
      ~checked:[ Program.block_unit hot 0; Program.block_unit hot 2 ]
      prog
  in
  let whole =
    Program.variant [ Sanitizer.asan ] ~block_split:4
      ~checked:(List.init 4 (Program.block_unit hot))
      prog
  in
  let t b = Trace.total_work (Program.build_trace b ~seed:1) in
  Alcotest.(check bool) "none < half" true (t none < t half);
  Alcotest.(check bool) "half < whole" true (t half < t whole);
  Alcotest.(check bool) "whole < full" true (t whole < t full);
  (* The half variant sits about midway between none and whole. *)
  let mid = (t none +. t whole) /. 2.0 in
  Alcotest.(check bool) "half ~ midway" true (Float.abs (t half -. mid) /. mid < 0.02)

let test_block_split_plan_covers () =
  let prog = (Spec.find "hmmer").Bench.prog in
  let profile = List.map (fun f -> (f.Program.fn_name, 10.0)) prog.Program.funcs in
  let plan =
    Variant.check_distribution ~n:3 ~block_split:4 ~sanitizer:Sanitizer.asan
      ~overhead_profile:profile prog
  in
  Alcotest.(check bool) "coverage complete" true (Variant.coverage_complete plan);
  (* Units are disjoint across variants. *)
  let all =
    List.concat_map
      (fun s -> Option.value ~default:[] s.Variant.vs_checked_funcs)
      plan.Variant.pl_specs
  in
  Alcotest.(check int) "disjoint" (List.length (List.sort_uniq compare all)) (List.length all);
  Alcotest.(check int) "4 units per function" (4 * List.length prog.Program.funcs)
    (List.length all)

let test_block_split_fixes_outlier () =
  (* The §6 headline: hmmer distributes at block granularity. *)
  let bench = Spec.find "hmmer" in
  let func_level = E.check_distribution ~n:3 bench in
  let block_level = E.check_distribution ~n:3 ~block_split:8 bench in
  Alcotest.(check bool) "func-level stuck near full" true
    (func_level.E.cd_bunshin_overhead > 0.85 *. func_level.E.cd_full_overhead);
  Alcotest.(check bool) "block-level distributes" true
    (block_level.E.cd_bunshin_overhead < 0.60 *. block_level.E.cd_full_overhead)

(* ------------------------------------------------------------------ *)
(* Basic-block granularity: IR level (sink_filter) *)

let test_sink_filter_partitions_checks () =
  (* One function with two checked accesses; split its sinks across two
     variants and verify the union still covers both errors. *)
  let b = B.create "two-sites" in
  B.start_func b ~name:"main" ~params:[ "i"; "j" ];
  let p = B.call b "malloc" [ B.cst 4 ] in
  B.store b (B.cst 1) (B.gep b p (Ir.Reg "i"));
  B.store b (B.cst 2) (B.gep b p (Ir.Reg "j"));
  B.ret b None;
  let m = B.finish b in
  let inst = Instrument.apply_exn [ Sanitizer.asan ] m in
  let sinks = Slicer.discover inst in
  Alcotest.(check int) "two sinks" 2 (List.length sinks);
  let s0 = List.nth sinks 0 and s1 = List.nth sinks 1 in
  let va = Slicer.remove_checks ~sink_filter:(fun s -> s = s1) inst in
  let vb = Slicer.remove_checks ~sink_filter:(fun s -> s = s0) inst in
  Alcotest.(check int) "va keeps one" 1 (List.length (Slicer.discover va));
  Alcotest.(check int) "vb keeps one" 1 (List.length (Slicer.discover vb));
  let detected m args =
    match (Interp.run m ~entry:"main" ~args).Interp.outcome with
    | Interp.Detected _ -> true
    | _ -> false
  in
  (* Overflow at the first site (i=4) vs second site (j=4). *)
  let first = [ 4L; 0L ] and second = [ 0L; 4L ] in
  Alcotest.(check bool) "union covers first" true (detected va first || detected vb first);
  Alcotest.(check bool) "union covers second" true (detected va second || detected vb second);
  Alcotest.(check bool) "each variant misses one" true
    ((not (detected va first && detected va second))
    && not (detected vb first && detected vb second))

(* ------------------------------------------------------------------ *)
(* Layout diversification *)

let test_layout_changes_addresses () =
  let m = Nvariant.demo_modul () in
  let a1 = Interp.address_of_global ~config:{ Interp.default_config with layout_seed = 1 } m "dispatch_table" in
  let a2 = Interp.address_of_global ~config:{ Interp.default_config with layout_seed = 2 } m "dispatch_table" in
  let a0 = Interp.address_of_global m "dispatch_table" in
  Alcotest.(check bool) "layouts differ" true (a1 <> a2);
  Alcotest.(check bool) "seed 0 is fixed" true (a0 = Interp.address_of_global m "dispatch_table")

let test_layout_preserves_behaviour () =
  (* Benign runs are layout-independent in observable events. *)
  let m = Nvariant.demo_modul () in
  let run seed =
    Interp.run ~config:{ Interp.default_config with layout_seed = seed } m ~entry:"main"
      ~args:[ 0L; 0L ]
  in
  Alcotest.(check bool) "same events" true (Interp.events_equal (run 5) (run 9))

let test_nvariant_detects () =
  let v = Nvariant.evaluate () in
  Alcotest.(check bool) "A hijacked" true v.Nvariant.nv_hijacked_a;
  Alcotest.(check bool) "B not hijacked" false v.Nvariant.nv_hijacked_b;
  Alcotest.(check bool) "diverged" true v.Nvariant.nv_diverged;
  Alcotest.(check bool) "detected" true v.Nvariant.nv_detected;
  Alcotest.(check bool) "benign clean" true v.Nvariant.nv_benign_clean

let test_nvariant_control () =
  Alcotest.(check bool) "single layout escapes" true (Nvariant.single_layout_escapes ())

let test_nvariant_seed_pairs () =
  (* The defense holds across several layout pairs. *)
  List.iter
    (fun (a, b) ->
      let v = Nvariant.evaluate ~seed_a:a ~seed_b:b () in
      Alcotest.(check bool) (Printf.sprintf "detected %d/%d" a b) true v.Nvariant.nv_detected)
    [ (1, 2); (7, 13); (100, 200) ]

(* ------------------------------------------------------------------ *)
(* Attack window *)

let test_window_strict_zero () =
  List.iter
    (fun payload ->
      let w = Window.run ~mode:Nxe.default_config ~payload () in
      Alcotest.(check int) "nothing executes" 0 w.Window.wr_executed;
      Alcotest.(check bool) "detected" true w.Window.wr_detected)
    [ Window.Reads; Window.Writes ]

let test_window_selective_writes_blocked () =
  let w = Window.run ~mode:Nxe.selective ~payload:Window.Writes () in
  Alcotest.(check int) "exfiltration blocked" 0 w.Window.wr_executed;
  Alcotest.(check bool) "detected" true w.Window.wr_detected

let test_window_selective_reads_leak () =
  (* Under-capacity: every read-class payload syscall executes before the
     healthy follower's divergence aborts the group.  Executed-payload
     accounting counts released slots, so this is exact, not a bound. *)
  let w = Window.run ~mode:Nxe.selective ~payload:Window.Reads ~n_malicious:16 () in
  Alcotest.(check int) "all 16 execute" 16 w.Window.wr_executed;
  Alcotest.(check bool) "still detected" true w.Window.wr_detected

let test_window_capacity_bounds_damage () =
  (* Over-capacity: the leader executes exactly [ring_capacity] payload
     syscalls and then blocks publishing the next one — the last published
     slot is still waiting on capacity when the abort lands, so it never
     reaches the kernel.  (The old synced-minus-prefix arithmetic counted
     that blocked slot as executed: an off-by-one in the attack window.) *)
  List.iter
    (fun cap ->
      let w =
        Window.run
          ~mode:{ Nxe.selective with Nxe.ring_capacity = cap }
          ~payload:Window.Reads ~n_malicious:32 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "exactly ring_capacity=%d execute" cap)
        cap w.Window.wr_executed;
      Alcotest.(check bool) "detected" true w.Window.wr_detected)
    [ 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Shared-memory races vs weak determinism (5.1's unsupported PARSEC
   members, demonstrated operationally) *)

(* Two threads, each: work; [lock] incr counter; syscall exposing it
   [unlock].  Work costs differ per variant, so without ordering the
   variants interleave differently. *)
let shared_trace ~locked ~t1_work ~t2_work =
  let thread work =
    let critical =
      [ Trace.Incr 0; Trace.Sys_shared (Bunshin.Syscall.read ~args:[ 3L ] (), 0) ]
    in
    Trace.Work { func = "f"; cost = work }
    ::
    (if locked then (Trace.Lock 0 :: critical) @ [ Trace.Unlock 0 ] else critical)
  in
  [ Trace.Spawn (thread t1_work) ] @ thread t2_work

let run_shared ~locked ~weak_det =
  (* Selective mode: a leader thread publishing inside a critical section
     does not block there, so the test isolates ordering effects from
     lockstep-vs-lock interleaving deadlocks. *)
  let config = { Nxe.selective with Nxe.weak_determinism = weak_det } in
  (* Variant 0: the spawned thread is fast; variant 1: it is slow (and the
     spawn itself costs a clone syscall, so the asymmetry must be large). *)
  let v0 = shared_trace ~locked ~t1_work:5.0 ~t2_work:60.0 in
  let v1 = shared_trace ~locked ~t1_work:60.0 ~t2_work:5.0 in
  let r = Nxe.run_traces ~config ~names:[ "v0"; "v1" ] [ v0; v1 ] in
  match r.Nxe.outcome with `All_finished -> `Clean | `Aborted _ -> `Alert

let test_race_free_with_weak_determinism () =
  (* Lock-ordered shared accesses replay identically: no false alert even
     though the variants' schedules differ. *)
  Alcotest.(check bool) "clean" true (run_shared ~locked:true ~weak_det:true = `Clean)

let test_race_free_without_weak_determinism_diverges () =
  (* Same race-free program, ordering enforcement off: the variants commit
     the lock-ordered updates in different orders and the NXE (rightly)
     cannot tell this apart from an attack. *)
  Alcotest.(check bool) "false alert" true (run_shared ~locked:true ~weak_det:false = `Alert)

let test_racy_program_diverges_regardless () =
  (* canneal/facesim/ferret/x264: intentional races bypass the pthreads
     API, so weak determinism cannot help — the paper's 5.1 exclusions. *)
  Alcotest.(check bool) "false alert" true (run_shared ~locked:false ~weak_det:true = `Alert)

(* ------------------------------------------------------------------ *)
(* Asynchronous signal delivery at equivalent points *)

let signal_body =
  List.concat
    (List.init 6 (fun i ->
         [
           Trace.Work { func = "f"; cost = 40.0 };
           Trace.Sys (Bunshin.Syscall.read ~args:[ 3L; Int64.of_int i ] ());
         ]))

let sigusr1_handler =
  [
    Trace.Work { func = "handler"; cost = 2.0 };
    Trace.Sys (Bunshin.Syscall.write ~args:[ 2L; 911L ] ());
  ]

let test_signal_delivered_to_all_variants () =
  (* The handler's write syscall enters the synchronized stream; if any
     follower failed to run the handler at the same position, the stream
     would diverge. *)
  let r =
    Nxe.run_traces
      ~signals:[ (100.0, sigusr1_handler) ]
      ~names:[ "v0"; "v1"; "v2" ]
      [ signal_body; signal_body; signal_body ]
  in
  Alcotest.(check bool) "no divergence" true (r.Nxe.outcome = `All_finished);
  (* 6 reads + 1 delivery marker + 1 handler write. *)
  Alcotest.(check int) "stream length" 8 r.Nxe.synced_syscalls

let test_multiple_signals () =
  let r =
    Nxe.run_traces
      ~signals:[ (50.0, sigusr1_handler); (150.0, sigusr1_handler) ]
      ~names:[ "v0"; "v1" ] [ signal_body; signal_body ]
  in
  Alcotest.(check bool) "clean" true (r.Nxe.outcome = `All_finished);
  Alcotest.(check int) "two deliveries" 10 r.Nxe.synced_syscalls

let test_signal_in_selective_mode () =
  let r =
    Nxe.run_traces ~config:Nxe.selective
      ~signals:[ (100.0, sigusr1_handler) ]
      ~names:[ "v0"; "v1" ] [ signal_body; signal_body ]
  in
  Alcotest.(check bool) "clean" true (r.Nxe.outcome = `All_finished)

let test_no_signal_is_baseline () =
  let r = Nxe.run_traces ~names:[ "v0"; "v1" ] [ signal_body; signal_body ] in
  Alcotest.(check int) "six syscalls" 6 r.Nxe.synced_syscalls

(* ------------------------------------------------------------------ *)
(* Shared-memory propagation (§3.3's poisoned-page mechanism) *)

(* Read an externally-written shared mapping, then expose the value read
   through a syscall argument.  Without propagation the followers see their
   stale local copy and diverge. *)
let shared_mapping_trace () =
  [
    Trace.Work { func = "f"; cost = 10.0 };
    Trace.Shared_read { region = 3; counter = 0 };
    Trace.Sys_shared (Bunshin.Syscall.write ~args:[ 1L ] (), 0);
    Trace.Work { func = "f"; cost = 5.0 };
    Trace.Shared_read { region = 3; counter = 0 };
    Trace.Sys_shared (Bunshin.Syscall.write ~args:[ 1L ] (), 0);
  ]

let run_shared_mapping ~propagate =
  let config = { Nxe.default_config with Nxe.sync_shared_memory = propagate } in
  let t = shared_mapping_trace () in
  Nxe.run_traces ~config ~names:[ "v0"; "v1"; "v2" ] [ t; t; t ]

let test_shared_memory_propagation_clean () =
  let r = run_shared_mapping ~propagate:true in
  Alcotest.(check bool) "no divergence" true (r.Nxe.outcome = `All_finished);
  (* Two page-fault slots + two exposed writes per run. *)
  Alcotest.(check int) "4 synced" 4 r.Nxe.synced_syscalls

let test_shared_memory_without_propagation_diverges () =
  let r = run_shared_mapping ~propagate:false in
  Alcotest.(check bool) "diverges on stale copy" true
    (match r.Nxe.outcome with `Aborted _ -> true | `All_finished -> false)

let test_shared_memory_values_progress () =
  (* The world writes fresh values between accesses: the leader's two reads
     observe different contents (the 7k+region sequence), and followers
     adopt exactly those. *)
  let p =
    {
      Program.name = "shm";
      funcs = [ { Program.fn_name = "f"; fn_profile = Cost_model.typical_profile } ];
      working_set = 1.0;
      gen_trace = (fun _ -> shared_mapping_trace ());
    }
  in
  let prof = Profile.measure (Program.baseline p) ~seed:1 in
  Alcotest.(check bool) "solo run works" true (prof.Profile.total_time > 0.0)

(* ------------------------------------------------------------------ *)
(* Appendix model *)

let test_model_eq1 () =
  Alcotest.(check (float 1e-9)) "max + sync" 0.55
    (Model.predicted_total ~variant_overheads:[ 0.3; 0.5; 0.4 ] ~sync:0.05)

let test_model_optimum () =
  Alcotest.(check (float 1e-9)) "O/N + residual" 0.45
    (Model.theoretical_optimum ~total_checks:1.05 ~residual:0.1 ~n:3)

let test_model_imbalance () =
  Alcotest.(check (float 1e-9)) "balanced" 0.0 (Model.imbalance ~variant_overheads:[ 0.4; 0.4 ]);
  Alcotest.(check (float 1e-9)) "eq4" 0.2 (Model.imbalance ~variant_overheads:[ 0.3; 0.5 ])

let test_model_validates_measurement () =
  (* A real measurement decomposes per Eq. 1: total >= max variant. *)
  let r = E.check_distribution ~n:3 (Spec.find "bzip2") in
  Alcotest.(check bool) "consistent" true
    (Model.consistent ~measured_total:r.E.cd_bunshin_overhead
       ~variant_overheads:r.E.cd_variant_overheads ());
  let sync =
    Model.sync_component ~measured_total:r.E.cd_bunshin_overhead
      ~variant_overheads:r.E.cd_variant_overheads
  in
  Alcotest.(check bool) (Printf.sprintf "sync %.3f in [0, 0.35]" sync) true
    (sync >= -0.02 && sync <= 0.35)

(* ------------------------------------------------------------------ *)
(* The bridge: IR variants under the real NXE *)

let bridge_cve () = List.hd Bunshin.Cve.cases

let bridge_variants case =
  let san = Sanitizer.asan in
  let inst = Instrument.apply_exn [ san ] case.Bunshin.Cve.c_modul in
  let others =
    List.filter
      (fun f -> f <> case.Bunshin.Cve.c_vuln_func)
      (List.map (fun f -> f.Ir.f_name) case.Bunshin.Cve.c_modul.Ir.m_funcs)
  in
  [ Slicer.remove_checks ~in_funcs:others inst;
    Slicer.remove_checks ~in_funcs:[ case.Bunshin.Cve.c_vuln_func ] inst ]

let test_bridge_benign_runs_clean () =
  let case = bridge_cve () in
  let r =
    Bunshin.Bridge.run_ir_variants ~entry:case.Bunshin.Cve.c_entry
      ~args:case.Bunshin.Cve.c_benign (bridge_variants case)
  in
  Alcotest.(check bool) "no divergence on benign input" true (r.Nxe.outcome = `All_finished);
  Alcotest.(check bool) "some syscalls synced" true (r.Nxe.synced_syscalls > 0)

let test_bridge_exploit_aborts_under_nxe () =
  (* The full-stack 5.3 story: the checked variant's ASan report write is
     an extra syscall the unchecked variant never issues; the engine
     aborts the group. *)
  let case = bridge_cve () in
  let r =
    Bunshin.Bridge.run_ir_variants ~entry:case.Bunshin.Cve.c_entry
      ~args:case.Bunshin.Cve.c_exploit_args (bridge_variants case)
  in
  Alcotest.(check bool) "monitor aborts" true
    (match r.Nxe.outcome with `Aborted _ -> true | `All_finished -> false)

let test_bridge_trace_shape () =
  let case = bridge_cve () in
  let run =
    Interp.run case.Bunshin.Cve.c_modul ~entry:case.Bunshin.Cve.c_entry
      ~args:case.Bunshin.Cve.c_benign
  in
  let t = Bunshin.Bridge.trace_of_run run in
  Alcotest.(check int) "one syscall per event" (List.length run.Interp.events)
    (Trace.syscall_count t);
  Alcotest.(check bool) "has compute" true (Trace.total_work t > 0.0)

(* ------------------------------------------------------------------ *)
(* §5.7 memory model *)

let test_ram_check_distribution_not_reduced () =
  let prog = (Spec.find "bzip2").Bench.prog in
  let full = Program.build_ram_overhead (Program.full [ Sanitizer.asan ] prog) in
  let partial =
    Program.build_ram_overhead (Program.variant [ Sanitizer.asan ] ~checked:[] prog)
  in
  (* The shadow stays whole no matter how few checks the variant keeps. *)
  Alcotest.(check (float 1e-9)) "same RAM" full partial;
  Alcotest.(check bool) "substantial" true (full >= 1.5)

let test_ram_sanitizer_distribution_splits () =
  let prog = (Spec.find "bzip2").Bench.prog in
  let full = Program.build_ram_overhead (Program.full Sanitizer.ubsan_subs prog) in
  match
    Variant.sanitizer_distribution ~n:3
      ~units:(List.map (fun s -> ([ s ], 0.1)) Sanitizer.ubsan_subs)
      prog
  with
  | Error e -> Alcotest.fail e
  | Ok plan ->
    let rams = List.map Program.build_ram_overhead (Variant.builds plan) in
    Alcotest.(check bool) "max variant well below full" true
      (Stats.maximum rams < 0.6 *. full);
    Alcotest.(check (float 1e-9)) "total conserved" full (Stats.sum rams)

(* ------------------------------------------------------------------ *)
(* Profile serialization *)

let test_profile_roundtrip () =
  let p = Profile.measure (Program.baseline (Spec.find "bzip2").Bench.prog) ~seed:1 in
  match Profile.of_string (Profile.to_string p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
    Alcotest.(check string) "name" p.Profile.prog_name p'.Profile.prog_name;
    Alcotest.(check (float 1e-3)) "total" p.Profile.total_time p'.Profile.total_time;
    Alcotest.(check int) "funcs" (List.length p.Profile.by_func)
      (List.length p'.Profile.by_func)

let test_profile_rejects_garbage () =
  Alcotest.(check bool) "bad input" true (Result.is_error (Profile.of_string "nonsense"));
  Alcotest.(check bool) "bad number" true
    (Result.is_error (Profile.of_string "program\tx\ntotal\tnot-a-float\n"))

let () =
  Alcotest.run "bunshin_extensions"
    [
      ( "block-granularity",
        [
          Alcotest.test_case "unit naming" `Quick test_block_unit_naming;
          Alcotest.test_case "cost fractions" `Quick test_variant_block_fraction;
          Alcotest.test_case "plan covers" `Quick test_block_split_plan_covers;
          Alcotest.test_case "fixes outlier" `Slow test_block_split_fixes_outlier;
          Alcotest.test_case "ir sink filter" `Quick test_sink_filter_partitions_checks;
        ] );
      ( "layout-diversification",
        [
          Alcotest.test_case "addresses differ" `Quick test_layout_changes_addresses;
          Alcotest.test_case "behaviour preserved" `Quick test_layout_preserves_behaviour;
          Alcotest.test_case "detects hijack" `Quick test_nvariant_detects;
          Alcotest.test_case "single-layout control" `Quick test_nvariant_control;
          Alcotest.test_case "several seed pairs" `Quick test_nvariant_seed_pairs;
        ] );
      ( "attack-window",
        [
          Alcotest.test_case "strict executes nothing" `Quick test_window_strict_zero;
          Alcotest.test_case "selective blocks writes" `Quick test_window_selective_writes_blocked;
          Alcotest.test_case "selective leaks reads" `Quick test_window_selective_reads_leak;
          Alcotest.test_case "capacity bounds damage" `Quick test_window_capacity_bounds_damage;
        ] );
      ( "signals",
        [
          Alcotest.test_case "delivered to all variants" `Quick
            test_signal_delivered_to_all_variants;
          Alcotest.test_case "multiple signals" `Quick test_multiple_signals;
          Alcotest.test_case "selective mode" `Quick test_signal_in_selective_mode;
          Alcotest.test_case "no signal baseline" `Quick test_no_signal_is_baseline;
        ] );
      ( "shared-memory",
        [
          Alcotest.test_case "propagation keeps variants consistent" `Quick
            test_shared_memory_propagation_clean;
          Alcotest.test_case "stale copies diverge" `Quick
            test_shared_memory_without_propagation_diverges;
          Alcotest.test_case "solo semantics" `Quick test_shared_memory_values_progress;
        ] );
      ( "weak-determinism-races",
        [
          Alcotest.test_case "race-free + ordering: clean" `Quick
            test_race_free_with_weak_determinism;
          Alcotest.test_case "ordering off: diverges" `Quick
            test_race_free_without_weak_determinism_diverges;
          Alcotest.test_case "racy: diverges regardless" `Quick
            test_racy_program_diverges_regardless;
        ] );
      ( "model",
        [
          Alcotest.test_case "eq1" `Quick test_model_eq1;
          Alcotest.test_case "optimum" `Quick test_model_optimum;
          Alcotest.test_case "imbalance" `Quick test_model_imbalance;
          Alcotest.test_case "validates measurement" `Quick test_model_validates_measurement;
        ] );
      ( "bridge",
        [
          Alcotest.test_case "benign clean under NXE" `Quick test_bridge_benign_runs_clean;
          Alcotest.test_case "exploit aborts under NXE" `Quick test_bridge_exploit_aborts_under_nxe;
          Alcotest.test_case "trace shape" `Quick test_bridge_trace_shape;
        ] );
      ( "memory-model",
        [
          Alcotest.test_case "check distribution keeps shadow" `Quick
            test_ram_check_distribution_not_reduced;
          Alcotest.test_case "sanitizer distribution splits RAM" `Quick
            test_ram_sanitizer_distribution_splits;
        ] );
      ( "profile-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_profile_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_profile_rejects_garbage;
        ] );
    ]
