(* Tests for Bunshin_util: deterministic RNG, statistics, table rendering. *)

module Rng = Bunshin_util.Rng
module Stats = Bunshin_util.Stats
module Table = Bunshin_util.Table

let check_float = Alcotest.(check (float 1e-9))
let check_close msg eps expected actual = Alcotest.(check (float eps)) msg expected actual

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_int_bounds () =
  let t = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int t 13 in
    Alcotest.(check bool) "in [0,13)" true (v >= 0 && v < 13)
  done

let test_rng_int_in_bounds () =
  let t = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.int_in t (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_rejects_bad_bound () =
  let t = Rng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int t 0))

let test_rng_float_bounds () =
  let t = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float t 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independent () =
  let parent = Rng.create 10 in
  let child = Rng.split parent in
  let xs = List.init 32 (fun _ -> Rng.int64 parent) in
  let ys = List.init 32 (fun _ -> Rng.int64 child) in
  Alcotest.(check bool) "substreams differ" true (xs <> ys)

let test_rng_copy_preserves_state () =
  let a = Rng.create 11 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

let test_rng_uniformity () =
  (* Coarse check: each of 10 buckets receives 10% +- 3%. *)
  let t = Rng.create 12 in
  let buckets = Array.make 10 0 in
  let n = 20000 in
  for _ = 1 to n do
    let b = Rng.int t 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "bucket near 0.1" true (frac > 0.07 && frac < 0.13))
    buckets

let test_rng_no_modulo_bias () =
  (* Regression: [Rng.int] used a raw [v mod bound] over the 62-bit draw.
     For bound = 3 * 2^60 the partial bucket [0, 2^60) then receives twice
     the mass: P(v < 2^60) = 0.5 instead of 1/3.  Rejection sampling makes
     it uniform; 10k draws put the biased estimator ~25 sigma away, so this
     cannot pass by luck with the old code. *)
  let bound = 3 * 0x1000000000000000 (* 3 * 2^60 *) in
  let cut = 0x1000000000000000 in
  let t = Rng.create 21 in
  let n = 10_000 in
  let low = ref 0 in
  for _ = 1 to n do
    let v = Rng.int t bound in
    Alcotest.(check bool) "in range" true (v >= 0 && v < bound);
    if v < cut then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "low third near 1/3 (got %.3f)" frac)
    true
    (frac > 0.30 && frac < 0.37)

let test_rng_power_of_two_stream_unchanged () =
  (* Power-of-two bounds never reject, so they must draw exactly one raw
     value per call — the historical streams (ASLR pads etc.) are stable. *)
  let a = Rng.create 33 and b = Rng.create 33 in
  for _ = 1 to 100 do
    let x = Rng.int a 16 in
    let raw = Int64.to_int (Int64.logand (Rng.int64 b) (Int64.of_int max_int)) in
    Alcotest.(check int) "one raw draw per call" (raw mod 16) x
  done

let test_rng_gaussian_moments () =
  let t = Rng.create 13 in
  let xs = List.init 20000 (fun _ -> Rng.gaussian t ~mean:5.0 ~stddev:2.0) in
  check_close "mean" 0.1 5.0 (Stats.mean xs);
  check_close "stddev" 0.1 2.0 (Stats.stddev xs)

let test_rng_exponential_mean () =
  let t = Rng.create 14 in
  let xs = List.init 20000 (fun _ -> Rng.exponential t ~mean:3.0) in
  check_close "mean" 0.15 3.0 (Stats.mean xs)

let test_rng_pareto_bounds () =
  let t = Rng.create 19 in
  for _ = 1 to 1000 do
    let v = Rng.pareto t ~shape:1.5 ~scale:2.0 in
    Alcotest.(check bool) "above scale" true (v >= 2.0)
  done

let test_rng_chance_extremes () =
  let t = Rng.create 15 in
  Alcotest.(check bool) "p=0" false (Rng.chance t 0.0);
  Alcotest.(check bool) "p=1" true (Rng.chance t 1.0)

let test_rng_weighted_choice () =
  let t = Rng.create 16 in
  let counts = Hashtbl.create 3 in
  let bump k =
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  for _ = 1 to 10000 do
    bump (Rng.weighted_choice t [| ("a", 1.0); ("b", 3.0); ("c", 0.0) |])
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check int) "zero-weight never drawn" 0 (get "c");
  let ratio = float_of_int (get "b") /. float_of_int (get "a") in
  Alcotest.(check bool) "3x ratio approx" true (ratio > 2.5 && ratio < 3.5)

let test_rng_shuffle_permutation () =
  let t = Rng.create 17 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let t = Rng.create 18 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample t 10 arr in
  Alcotest.(check int) "size" 10 (Array.length s);
  let uniq = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 10 (List.length uniq)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty" 0.0 (Stats.mean [])

let test_stats_geomean () =
  check_float "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  Alcotest.check_raises "non-positive" (Invalid_argument "Stats.geomean: non-positive")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "two points" 1.0 (Stats.stddev [ 2.0; 4.0 ]);
  check_float "short lists" 0.0 (Stats.stddev [ 3.0 ])

let test_stats_median () =
  check_float "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_stats_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0" 10.0 (Stats.percentile 0.0 xs);
  check_float "p100" 40.0 (Stats.percentile 100.0 xs);
  check_float "p50" 25.0 (Stats.percentile 50.0 xs)

let test_stats_percentiles_agree () =
  (* The single-sort multi-quantile helper must agree exactly with the
     one-rank-at-a-time [percentile] — same rank arithmetic, one sort. *)
  let xs = [ 12.0; 3.5; 99.0; 0.25; 47.0; 47.0; 8.0 ] in
  let ps = [ 0.0; 25.0; 50.0; 90.0; 99.0; 99.9; 100.0 ] in
  let multi = Stats.percentiles (Array.of_list xs) ps in
  List.iter2
    (fun p v -> check_float (Printf.sprintf "p%g" p) (Stats.percentile p xs) v)
    ps multi

let test_stats_percentile_clamped () =
  (* p outside [0,100] used to index out of bounds in [percentile]; both
     helpers must clamp to the extreme order statistics and agree with
     each other on every input, valid or not. *)
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  let ps = [ -10.0; 0.0; 50.0; 100.0; 150.0 ] in
  check_float "p<0 clamps to min" 10.0 (Stats.percentile (-10.0) xs);
  check_float "p>100 clamps to max" 40.0 (Stats.percentile 150.0 xs);
  check_float "singleton out of range" 7.0 (Stats.percentile 200.0 [ 7.0 ]);
  let multi = Stats.percentiles (Array.of_list xs) ps in
  List.iter2
    (fun p v -> check_float (Printf.sprintf "p%g" p) (Stats.percentile p xs) v)
    ps multi

let test_stats_percentiles_edges () =
  Alcotest.(check (list (float 1e-9))) "empty -> zeros" [ 0.0; 0.0 ]
    (Stats.percentiles [||] [ 50.0; 99.0 ]);
  Alcotest.(check (list (float 1e-9))) "singleton" [ 7.0; 7.0 ]
    (Stats.percentiles [| 7.0 |] [ 0.0; 100.0 ]);
  let a = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.percentiles a [ 50.0 ]);
  Alcotest.(check (list (float 1e-9))) "input not modified" [ 3.0; 1.0; 2.0 ]
    (Array.to_list a)

let test_stats_overhead () =
  check_float "7% slowdown" 0.07 (Stats.overhead ~baseline:100.0 ~measured:107.0);
  check_float "speedup negative" (-0.5) (Stats.overhead ~baseline:2.0 ~measured:1.0)

let test_stats_pct () = Alcotest.(check string) "render" "47.1%" (Stats.pct 0.471)

let test_stats_minmax () =
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ])

(* Exact structural equality: bucket bounds are never computed, so no
   epsilon is needed, and (=) treats the infinity overflow bound correctly
   where Alcotest's float-epsilon testable would not. *)
let hist =
  Alcotest.testable
    (fun fmt h ->
      Format.fprintf fmt "[%s]"
        (String.concat "; " (List.map (fun (b, c) -> Printf.sprintf "(%g,%d)" b c) h)))
    ( = )

let test_histogram_explicit_buckets () =
  (* A sample lands in the first bucket with x <= bound; boundary values
     belong to their own bucket, not the next. *)
  Alcotest.check hist "bucketing"
    [ (1.0, 2); (2.0, 1); (5.0, 1); (infinity, 1) ]
    (Stats.histogram ~buckets:[ 1.0; 2.0; 5.0 ] [ 0.5; 1.0; 2.0; 3.0; 7.0 ])

let test_histogram_overflow_and_below () =
  Alcotest.check hist "below first and above last"
    [ (10.0, 1); (infinity, 2) ]
    (Stats.histogram ~buckets:[ 10.0 ] [ -5.0; 11.0; 1e9 ])

let test_histogram_unsorted_dup_buckets () =
  (* Bounds are sorted and deduplicated before use. *)
  Alcotest.check hist "normalized bounds"
    [ (1.0, 1); (2.0, 1); (infinity, 0) ]
    (Stats.histogram ~buckets:[ 2.0; 1.0; 2.0 ] [ 0.5; 1.5 ])

let test_histogram_default_buckets () =
  let xs = List.init 100 (fun i -> float_of_int i) in
  let h = Stats.histogram xs in
  Alcotest.(check int) "10 buckets + overflow" 11 (List.length h);
  Alcotest.(check int) "total preserved" 100 (List.fold_left (fun a (_, c) -> a + c) 0 h);
  Alcotest.(check int) "overflow empty" 0 (snd (List.nth h 10))

let test_histogram_empty_and_constant () =
  Alcotest.check hist "empty samples" [ (infinity, 0) ] (Stats.histogram []);
  Alcotest.check hist "constant samples" [ (4.0, 3); (infinity, 0) ]
    (Stats.histogram [ 4.0; 4.0; 4.0 ])

let test_histogram_rejects_bad_buckets () =
  Alcotest.check_raises "empty bucket list"
    (Invalid_argument "Stats.histogram: empty bucket list") (fun () ->
      ignore (Stats.histogram ~buckets:[] [ 1.0 ]));
  Alcotest.check_raises "non-finite bucket"
    (Invalid_argument "Stats.histogram: non-finite bucket") (fun () ->
      ignore (Stats.histogram ~buckets:[ 1.0; infinity ] [ 1.0 ]))

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_renders_rows () =
  let t = Table.create ~title:"T" [ ("name", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "contains alpha" true (contains s "alpha");
  Alcotest.(check bool) "contains 22" true (contains s "22")

let test_table_wrong_arity () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_alignment () =
  let t = Table.create [ ("col", Table.Right) ] in
  Table.add_row t [ "1" ];
  Table.add_row t [ "100" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* Right-aligned: the short value is padded on the left within its cell. *)
  let row1 = List.nth lines 2 in
  Alcotest.(check string) "padded" "   1 " row1

let test_table_separator () =
  let t = Table.create [ ("a", Table.Left) ] in
  Table.add_row t [ "x" ];
  Table.add_sep t;
  Table.add_row t [ "y" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  Alcotest.(check int) "line count" 6 (List.length lines)

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng: int always within bound" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let t = Rng.create seed in
      let v = Rng.int t bound in
      v >= 0 && v < bound)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"rng: shuffle preserves multiset" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let t = Rng.create seed in
      let arr = Array.of_list xs in
      Rng.shuffle t arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let prop_percentile_bounded =
  (* Including out-of-range p: the clamp keeps results inside [min,max]. *)
  QCheck.Test.make ~name:"stats: percentile within min/max" ~count:300
    QCheck.(pair (float_range (-50.0) 150.0) (list_of_size Gen.(1 -- 50) (float_range (-1e3) 1e3)))
    (fun (p, xs) ->
      let v = Stats.percentile p xs in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

let prop_percentiles_agree =
  QCheck.Test.make ~name:"stats: percentiles agrees with percentile" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (float_range (-1e3) 1e3))
        (list_of_size Gen.(1 -- 8) (float_range (-50.0) 150.0)))
    (fun (xs, ps) ->
      let multi = Stats.percentiles (Array.of_list xs) ps in
      List.for_all2
        (fun p v -> Float.abs (v -. Stats.percentile p xs) <= 1e-9)
        ps multi)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"stats: mean within min/max" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1e3) 1e3))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "bunshin_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy preserves state" `Quick test_rng_copy_preserves_state;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "no modulo bias" `Quick test_rng_no_modulo_bias;
          Alcotest.test_case "pow2 stream unchanged" `Quick
            test_rng_power_of_two_stream_unchanged;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto bounds" `Quick test_rng_pareto_bounds;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "weighted choice" `Quick test_rng_weighted_choice;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentiles agree" `Quick test_stats_percentiles_agree;
          Alcotest.test_case "percentile clamped" `Quick test_stats_percentile_clamped;
          Alcotest.test_case "percentiles edges" `Quick test_stats_percentiles_edges;
          Alcotest.test_case "overhead" `Quick test_stats_overhead;
          Alcotest.test_case "pct" `Quick test_stats_pct;
          Alcotest.test_case "minmax" `Quick test_stats_minmax;
          Alcotest.test_case "histogram explicit buckets" `Quick test_histogram_explicit_buckets;
          Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow_and_below;
          Alcotest.test_case "histogram unsorted buckets" `Quick test_histogram_unsorted_dup_buckets;
          Alcotest.test_case "histogram default buckets" `Quick test_histogram_default_buckets;
          Alcotest.test_case "histogram empty/constant" `Quick test_histogram_empty_and_constant;
          Alcotest.test_case "histogram rejects bad buckets" `Quick test_histogram_rejects_bad_buckets;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders rows" `Quick test_table_renders_rows;
          Alcotest.test_case "wrong arity" `Quick test_table_wrong_arity;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "separator" `Quick test_table_separator;
        ] );
      ( "properties",
        qcheck
          [
            prop_rng_int_in_range;
            prop_shuffle_preserves_multiset;
            prop_percentile_bounded;
            prop_percentiles_agree;
            prop_mean_between_min_max;
          ] );
    ]
