(* Tests for the telemetry subsystem: event ring semantics, metrics,
   exporters, and — most importantly — that attaching a sink never changes
   what the engine reports. *)

open Bunshin
module Tel = Telemetry

let find_bench name =
  List.find (fun b -> b.Bench.name = name) (Spec.all @ Multithreaded.splash)

(* ------------------------------------------------------------------ *)
(* Minimal recursive-descent JSON syntax checker: enough to prove the
   exporters emit well-formed JSON without a json dependency. *)

let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let fail = ref false in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | _ -> fail := true
    end
  and literal lit =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then
      pos := !pos + String.length lit
    else fail := true
  and number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail := true
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !closed) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '"' ->
        advance ();
        closed := true
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> fail := true
           done
         | _ -> fail := true)
      | Some c ->
        if Char.code c < 0x20 then fail := true;
        advance ()
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let continue = ref true in
      while !continue && not !fail do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some '}' ->
          advance ();
          continue := false
        | _ ->
          fail := true;
          continue := false
      done
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let continue = ref true in
      while !continue && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance ()
        | Some ']' ->
          advance ();
          continue := false
        | _ ->
          fail := true;
          continue := false
      done
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

(* ------------------------------------------------------------------ *)
(* Event ring *)

let test_span_nesting () =
  let sink = Tel.create () in
  let d = Tel.domain sink ~name:"test" in
  Tel.span_begin d ~ts:0.0 ~cat:"c" "outer";
  Tel.span_begin d ~ts:1.0 ~cat:"c" "inner";
  Tel.instant d ~ts:1.5 ~cat:"c" "mark";
  Tel.span_end d ~ts:2.0 ~cat:"c" "inner";
  Tel.span_end d ~ts:3.0 ~cat:"c" "outer";
  let evs = Tel.events sink in
  Alcotest.(check int) "5 events" 5 (List.length evs);
  Alcotest.(check (list string)) "order preserved"
    [ "outer"; "inner"; "mark"; "inner"; "outer" ]
    (List.map (fun e -> e.Tel.ev_name) evs);
  let phases = List.map (fun e -> e.Tel.ev_phase) evs in
  Alcotest.(check bool) "phases" true
    (phases = [ Tel.Begin; Tel.Begin; Tel.Instant; Tel.End; Tel.End ]);
  Alcotest.(check bool) "timestamps ascend" true
    (let ts = List.map (fun e -> e.Tel.ev_ts) evs in
     List.sort compare ts = ts)

let test_ring_truncation () =
  let sink = Tel.create ~capacity:4 () in
  let d = Tel.domain sink ~name:"t" in
  for i = 1 to 10 do
    Tel.instant d ~ts:(float_of_int i) ~cat:"c" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "capacity" 4 (Tel.capacity sink);
  Alcotest.(check int) "ring holds 4" 4 (Tel.event_count sink);
  Alcotest.(check int) "6 dropped" 6 (Tel.dropped_events sink);
  Alcotest.(check (list string)) "oldest evicted, newest kept"
    [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun e -> e.Tel.ev_name) (Tel.events sink))

let test_recent () =
  let sink = Tel.create ~capacity:8 () in
  let d = Tel.domain sink ~name:"t" in
  let names evs = List.map (fun e -> e.Tel.ev_name) evs in
  Alcotest.(check (list string)) "empty sink" [] (names (Tel.recent sink 3));
  for i = 1 to 5 do
    Tel.instant d ~ts:(float_of_int i) ~cat:"c" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check (list string)) "last 2" [ "e4"; "e5" ] (names (Tel.recent sink 2));
  Alcotest.(check (list string)) "n = count" (names (Tel.events sink))
    (names (Tel.recent sink 5));
  Alcotest.(check (list string)) "n past count clamps" (names (Tel.events sink))
    (names (Tel.recent sink 100));
  Alcotest.(check (list string)) "n = 0" [] (names (Tel.recent sink 0));
  Alcotest.check_raises "negative n"
    (Invalid_argument "Telemetry.recent: negative window") (fun () ->
      ignore (Tel.recent sink (-1)))

let test_recent_after_eviction () =
  (* The window must stay correct once the ring has wrapped: recent n is
     the tail of what [events] still holds, not of everything emitted. *)
  let sink = Tel.create ~capacity:4 () in
  let d = Tel.domain sink ~name:"t" in
  for i = 1 to 10 do
    Tel.instant d ~ts:(float_of_int i) ~cat:"c" (Printf.sprintf "e%d" i)
  done;
  let names evs = List.map (fun e -> e.Tel.ev_name) evs in
  Alcotest.(check (list string)) "last 2 of the surviving 4" [ "e9"; "e10" ]
    (names (Tel.recent sink 2));
  Alcotest.(check (list string)) "window clamps to survivors"
    [ "e7"; "e8"; "e9"; "e10" ]
    (names (Tel.recent sink 9))

let test_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Telemetry.create: capacity must be positive") (fun () ->
      ignore (Tel.create ~capacity:0 ()))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_hist_matches_stats () =
  (* The two histogram implementations must agree bucket by bucket. *)
  let buckets = [ 5.0; 1.0; 2.0; 1.0 ] (* unsorted, duplicated *) in
  let samples = [ 0.0; 1.0; 1.5; 2.0; 2.5; 5.0; 99.0; -3.0 ] in
  let h = Tel.Hist.create ~buckets () in
  List.iter (Tel.Hist.observe h) samples;
  Alcotest.(check bool) "same dump" true
    (Tel.Hist.dump h = Stats.histogram ~buckets samples);
  Alcotest.(check int) "count" (List.length samples) (Tel.Hist.count h);
  Alcotest.(check (float 1e-9)) "mean" (Stats.mean samples) (Tel.Hist.mean h);
  Alcotest.(check (float 1e-9)) "min" (-3.0) (Tel.Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max" 99.0 (Tel.Hist.max_value h)

let test_hist_empty () =
  let h = Tel.Hist.create ~buckets:[ 1.0 ] () in
  Alcotest.(check int) "count 0" 0 (Tel.Hist.count h);
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 (Tel.Hist.mean h);
  Alcotest.(check bool) "all buckets empty" true
    (List.for_all (fun (_, c) -> c = 0) (Tel.Hist.dump h))

let test_registry () =
  let sink = Tel.create () in
  let c = Tel.counter sink "hits" in
  Tel.Counter.incr c;
  Tel.Counter.incr ~by:4 c;
  Alcotest.(check int) "counter accumulates" 5 (Tel.Counter.value c);
  Alcotest.(check int) "get-or-create shares state" 5
    (Tel.Counter.value (Tel.counter sink "hits"));
  let g = Tel.gauge sink "level" in
  Tel.Gauge.set g 3.0;
  Tel.Gauge.set g 1.0;
  Alcotest.(check (float 1e-9)) "gauge last" 1.0 (Tel.Gauge.last g);
  Alcotest.(check (float 1e-9)) "gauge max" 3.0 (Tel.Gauge.max_value g);
  Alcotest.(check int) "gauge samples" 2 (Tel.Gauge.samples g);
  (match Tel.gauge sink "hits" with
   | _ -> Alcotest.fail "kind mismatch not rejected"
   | exception Invalid_argument _ -> ());
  let h1 = Tel.Hist.create ~buckets:[ 1.0 ] () in
  let h2 = Tel.Hist.create ~buckets:[ 1.0 ] () in
  Alcotest.(check string) "first name" "h" (Tel.register_hist sink "h" h1);
  Alcotest.(check string) "collision suffixed" "h#2" (Tel.register_hist sink "h" h2)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let traced_session () =
  let sink = Tel.create () in
  let config = { Nxe.default_config with Nxe.telemetry = Some sink } in
  let bench = find_bench "bzip2" in
  let builds = [ Program.baseline bench.Bench.prog; Program.baseline bench.Bench.prog ] in
  let r = Experiments.nxe_run ~config ~seed:Experiments.ref_seed builds in
  (sink, r)

let test_chrome_json_valid () =
  let sink, _ = traced_session () in
  let s = Tel.to_chrome_json sink in
  Alcotest.(check bool) "trace JSON parses" true (json_valid s);
  Alcotest.(check bool) "metrics JSON parses" true (json_valid (Tel.metrics_to_json sink))

let test_trace_covers_layers () =
  let sink, _ = traced_session () in
  let cats =
    List.sort_uniq compare (List.map (fun e -> e.Tel.ev_cat) (Tel.events sink))
  in
  Alcotest.(check bool) "machine spans present" true (List.mem "machine" cats);
  Alcotest.(check bool) "nxe spans present" true (List.mem "nxe" cats);
  Alcotest.(check bool) "publishes counted" true
    (Tel.Counter.value (Tel.counter sink "nxe.slot_publish") > 0);
  Alcotest.(check bool) "text dump mentions hists" true
    (let txt = Tel.metrics_to_text sink in
     String.length txt > 0
     &&
     let contains ne =
       let nh = String.length txt and nn = String.length ne in
       let rec go i = i + nn <= nh && (String.sub txt i nn = ne || go (i + 1)) in
       go 0
     in
     contains "nxe.syscall_gap" && contains "nxe.lockstep_wait_us")

let test_interp_domain () =
  let sink = Tel.create () in
  let config = { Nxe.default_config with Nxe.telemetry = Some sink } in
  let case = List.hd Cve.cases in
  let inst = Instrument.apply_exn [ Sanitizer.asan ] case.Cve.c_modul in
  let r =
    Bridge.run_ir_variants ~config ~entry:case.Cve.c_entry ~args:case.Cve.c_benign
      [ inst; inst ]
  in
  Alcotest.(check bool) "benign run clean" true (r.Nxe.outcome = `All_finished);
  Alcotest.(check bool) "interp spans present" true
    (List.exists (fun e -> e.Tel.ev_cat = "interp") (Tel.events sink));
  Alcotest.(check bool) "check hits counted" true
    (Tel.Counter.value (Tel.counter sink "interp:v0.check_hits") > 0)

let str_contains hay ne =
  let nh = String.length hay and nn = String.length ne in
  let rec go i = i + nn <= nh && (String.sub hay i nn = ne || go (i + 1)) in
  go 0

let str_index hay ne =
  let nh = String.length hay and nn = String.length ne in
  let rec go i =
    if i + nn > nh then -1 else if String.sub hay i nn = ne then i else go (i + 1)
  in
  go 0

(* Every per-variant NXE lane must carry a Chrome `M` (metadata) event
   naming it "<channel> v<N>" — without these, chrome://tracing shows
   anonymous tid numbers and the per-variant decomposition is unreadable. *)
let test_variant_lanes_named () =
  let sink, _ = traced_session () in
  let chrome = Tel.to_chrome_json sink in
  Alcotest.(check bool) "has thread_name metadata" true
    (str_contains chrome "{\"name\":\"thread_name\",\"ph\":\"M\"");
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "lane for variant %d labeled" v) true
        (str_contains chrome (Printf.sprintf " v%d\"}}" v)))
    [ 0; 1 ]

(* Metric keys export in sorted order regardless of registration order, so
   two runs whose code paths registered metrics differently still diff
   cleanly. *)
let test_metrics_sorted () =
  let sink = Tel.create () in
  ignore (Tel.counter sink "zeta");
  ignore (Tel.counter sink "alpha");
  ignore (Tel.counter sink "beta.sub");
  let js = Tel.metrics_to_json sink in
  Alcotest.(check bool) "counters pinned sorted" true
    (str_contains js "\"counters\":{\"alpha\":0,\"beta.sub\":0,\"zeta\":0}");
  let txt = Tel.metrics_to_text sink in
  let ia = str_index txt "alpha" and ib = str_index txt "beta.sub" and iz = str_index txt "zeta" in
  Alcotest.(check bool) "text order sorted" true (ia >= 0 && ia < ib && ib < iz)

(* ------------------------------------------------------------------ *)
(* Behavior neutrality: a sink must never change the engine's report. *)

let test_disabled_sink_identical_report () =
  List.iter
    (fun name ->
      let bench = find_bench name in
      let builds =
        [ Program.baseline bench.Bench.prog; Program.baseline bench.Bench.prog ]
      in
      let bare = Experiments.nxe_run ~seed:Experiments.ref_seed builds in
      let traced =
        Experiments.nxe_run
          ~config:{ Nxe.default_config with Nxe.telemetry = Some (Tel.create ()) }
          ~seed:Experiments.ref_seed builds
      in
      Alcotest.(check bool)
        (name ^ ": report identical with sink attached")
        true (bare = traced))
    [ "bzip2"; "barnes" ]

let test_report_histograms_always_on () =
  let _, r = traced_session () in
  let bare =
    let bench = find_bench "bzip2" in
    Experiments.nxe_run ~seed:Experiments.ref_seed
      [ Program.baseline bench.Bench.prog; Program.baseline bench.Bench.prog ]
  in
  Alcotest.(check (list string)) "all histograms present"
    [ "syscall_gap"; "lockstep_wait_us"; "heartbeat_wait_us" ]
    (List.map fst bare.Nxe.histograms);
  let total h = List.fold_left (fun a (_, c) -> a + c) 0 h in
  Alcotest.(check bool) "gap samples recorded" true
    (total (List.assoc "syscall_gap" bare.Nxe.histograms) > 0);
  Alcotest.(check bool) "same with sink" true (bare.Nxe.histograms = r.Nxe.histograms)

let test_negative_cost_rejected () =
  let bench = find_bench "bzip2" in
  let builds = [ Program.baseline bench.Bench.prog ] in
  match
    Experiments.nxe_run
      ~config:{ Nxe.default_config with Nxe.checkin_cost = -1.0 }
      ~seed:Experiments.ref_seed builds
  with
  | _ -> Alcotest.fail "negative checkin_cost accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Windowed SLO monitor *)

module Slo = Tel.Slo

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_slo_count_and_rotation () =
  let w = Slo.window ~sub_windows:4 ~sub_us:100.0 () in
  Alcotest.(check (float 1e-9)) "span" 400.0 (Slo.span_us w);
  Slo.observe w ~now:50.0 5.0;
  Slo.observe w ~now:150.0 5.0;
  Alcotest.(check int) "both inside" 2 (Slo.count w ~now:150.0);
  (* Advancing recycles whole sub-windows in place: at now=450 the
     sub-window holding the sample from t=50 has rotated out. *)
  Alcotest.(check int) "oldest sub-window expired" 1 (Slo.count w ~now:450.0);
  Alcotest.(check int) "all expired" 0 (Slo.count w ~now:900.0);
  Alcotest.(check (float 1e-9)) "empty quantile is 0" 0.0
    (Slo.quantile w ~now:900.0 99.0)

let test_slo_quantile_agrees_with_stats () =
  (* The pinned agreement bound: a live windowed quantile may sit at most
     one log-bucket width above the exact sample quantile. *)
  let w = Slo.window ~sub_windows:8 ~sub_us:1000.0 () in
  let samples =
    List.init 200 (fun i -> 1.0 +. (float_of_int ((i * 37) mod 997) *. 5.0))
  in
  List.iteri (fun i x -> Slo.observe w ~now:(float_of_int i *. 10.0) x) samples;
  let now = 2000.0 in
  List.iter
    (fun p ->
      let live = Slo.quantile w ~now p in
      let exact = Stats.percentile p samples in
      Alcotest.(check bool)
        (Printf.sprintf "p%g live %.2f within a bucket of exact %.2f" p live exact)
        true
        (Float.abs (live -. exact)
         <= Slo.bucket_width_at w (Float.max live exact)))
    [ 50.0; 90.0; 99.0; 99.9 ];
  Alcotest.(check int) "all samples live" 200 (Slo.count w ~now);
  (* [quantiles] is just the mapped form. *)
  Alcotest.(check (list (float 1e-9)))
    "quantiles = map quantile"
    [ Slo.quantile w ~now 50.0; Slo.quantile w ~now 99.0 ]
    (Slo.quantiles w ~now [ 50.0; 99.0 ])

let test_slo_breach_and_burn () =
  let w = Slo.window ~sub_windows:2 ~sub_us:1000.0 () in
  (* 90 good samples in the (2,5] bucket, 10 bad ones in (20,50] — with
     a 10 µs limit only the bad bucket lies wholly above it. *)
  for i = 0 to 89 do
    Slo.observe w ~now:(float_of_int i) 5.0
  done;
  for i = 90 to 99 do
    Slo.observe w ~now:(float_of_int i) 50.0
  done;
  let target = { Slo.slo_quantile = 99.0; slo_limit_us = 10.0 } in
  Alcotest.(check (float 1e-9)) "breach fraction" 0.1
    (Slo.breach_fraction w ~now:100.0 target);
  Alcotest.(check (float 1e-9)) "burn rate = breach / error budget" 10.0
    (Slo.burn_rate w ~now:100.0 target);
  let tight = { Slo.slo_quantile = 99.0; slo_limit_us = 1000.0 } in
  Alcotest.(check (float 1e-9)) "no breach, no burn" 0.0
    (Slo.burn_rate w ~now:100.0 tight)

let test_slo_validation () =
  (match Slo.window ~sub_windows:0 () with
   | _ -> Alcotest.fail "zero sub-windows accepted"
   | exception Invalid_argument _ -> ());
  match Slo.window ~sub_us:0.0 () with
  | _ -> Alcotest.fail "zero sub-window span accepted"
  | exception Invalid_argument _ -> ()

let test_prometheus_format () =
  let sink = Tel.create () in
  Tel.Counter.incr ~by:3 (Tel.counter sink "net.bytes_sent");
  Tel.Gauge.set (Tel.gauge sink "slo.p99-us") 2.5;
  let h = Tel.hist ~buckets:[ 1.0; 10.0 ] sink "lat" in
  Tel.Hist.observe h 0.5;
  Tel.Hist.observe h 5.0;
  Tel.Hist.observe h 50.0;
  let out = Tel.metrics_to_prometheus sink in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains out needle))
    [
      (* names sanitized to [a-zA-Z0-9_:] *)
      "# TYPE net_bytes_sent counter\nnet_bytes_sent 3\n";
      "# TYPE slo_p99_us gauge\nslo_p99_us 2.5\n";
      "# TYPE lat histogram\n";
      (* cumulative buckets with the implicit +Inf overflow *)
      "lat_bucket{le=\"1\"} 1\n";
      "lat_bucket{le=\"10\"} 2\n";
      "lat_bucket{le=\"+Inf\"} 3\n";
      "lat_sum 55.5\n";
      "lat_count 3\n";
    ]

let () =
  Alcotest.run "bunshin_telemetry"
    [
      ( "ring",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "truncation drops oldest" `Quick test_ring_truncation;
          Alcotest.test_case "recent window" `Quick test_recent;
          Alcotest.test_case "recent after eviction" `Quick test_recent_after_eviction;
          Alcotest.test_case "bad capacity" `Quick test_bad_capacity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "hist matches Stats.histogram" `Quick test_hist_matches_stats;
          Alcotest.test_case "hist empty" `Quick test_hist_empty;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json valid" `Quick test_chrome_json_valid;
          Alcotest.test_case "trace covers layers" `Quick test_trace_covers_layers;
          Alcotest.test_case "interp domain" `Quick test_interp_domain;
          Alcotest.test_case "variant lanes named" `Quick test_variant_lanes_named;
          Alcotest.test_case "metrics keys sorted" `Quick test_metrics_sorted;
        ] );
      ( "slo",
        [
          Alcotest.test_case "count and rotation" `Quick test_slo_count_and_rotation;
          Alcotest.test_case "quantile agrees with stats" `Quick
            test_slo_quantile_agrees_with_stats;
          Alcotest.test_case "breach and burn" `Quick test_slo_breach_and_burn;
          Alcotest.test_case "validation" `Quick test_slo_validation;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "disabled sink identical report" `Quick
            test_disabled_sink_identical_report;
          Alcotest.test_case "report histograms always on" `Quick
            test_report_histograms_always_on;
          Alcotest.test_case "negative cost rejected" `Quick test_negative_cost_rejected;
        ] );
    ]
