(* Golden-report regression tests for the distributed NXE.

   Every field of [Cluster.report] — outcome, forensics, counts, per-kind
   wire traffic, per-link stats, variant status, histograms, per-node
   machine stats — is rendered canonically (floats in hex) and compared
   against a committed snapshot in test/golden/.  The corpus covers the
   three ship modes on clean, divergent and faulted runs, so any change
   that perturbs the distributed schedule — message timing, batching,
   flow control — fails here, not just verdict changes.

   Each scenario also runs with a telemetry sink attached (documented as
   pure observation): both reports must render byte-identically.

   Regenerate with:
     BUNSHIN_REGEN_GOLDEN=test/golden dune exec test/test_cluster_golden.exe *)

module M = Bunshin_machine.Machine
module Sc = Bunshin_syscall.Syscall
module Trace = Bunshin_program.Trace
module Nxe = Bunshin_nxe.Nxe
module Cluster = Bunshin_cluster.Cluster
module Net = Bunshin_net.Net
module F = Bunshin_forensics.Forensics
module Faults = Bunshin_faults.Faults
module Tel = Bunshin_telemetry.Telemetry

(* ------------------------------------------------------------------ *)
(* Canonical report rendering *)

let fl f = Printf.sprintf "%h" f

let sc_str = function
  | None -> "-"
  | Some sc -> Format.asprintf "%a" Sc.pp sc

let render (r : Cluster.report) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  (match r.Cluster.outcome with
   | `All_finished -> line "outcome: all_finished"
   | `Aborted a ->
     line "outcome: aborted chan=%d pos=%d variant=%d" a.Nxe.al_channel a.Nxe.al_position
       a.Nxe.al_variant;
     line "  expected: %s" a.Nxe.al_expected;
     line "  got: %s" a.Nxe.al_got;
     line "  expected_sc: %s" (sc_str a.Nxe.al_expected_sc);
     line "  got_sc: %s" (sc_str a.Nxe.al_got_sc));
  (match r.Cluster.incident with
   | None -> line "incident: -"
   | Some inc -> line "incident: %s" (F.to_json inc));
  line "total_time: %s" (fl r.Cluster.total_time);
  line "variant_finish: %s" (String.concat " " (List.map fl r.Cluster.variant_finish));
  line "variant_cpu: %s" (String.concat " " (List.map fl r.Cluster.variant_cpu));
  line "synced_syscalls: %d" r.Cluster.synced_syscalls;
  line "executed_syscalls: %d" r.Cluster.executed_syscalls;
  line "lockstep_syscalls: %d" r.Cluster.lockstep_syscalls;
  line "remote_checked: %d" r.Cluster.remote_checked;
  line "replicated_results: %d" r.Cluster.replicated_results;
  line "order_entries: %d" r.Cluster.order_entries;
  line "det_replays: %d" r.Cluster.det_replays;
  line "channels: %d" r.Cluster.channels;
  line "placement: %s" (String.concat " " (List.map string_of_int r.Cluster.placement));
  List.iteri
    (fun v st ->
      match st with
      | Nxe.Healthy -> line "variant_status[%d]: healthy" v
      | Nxe.Quarantined { q_time; q_cause; q_restarts } ->
        line "variant_status[%d]: quarantined t=%s cause=%s restarts=%d" v (fl q_time)
          (Nxe.cause_string q_cause) q_restarts
      | Nxe.Recovered { q_time; q_cause; r_time } ->
        line "variant_status[%d]: recovered q=%s cause=%s r=%s" v (fl q_time)
          (Nxe.cause_string q_cause) (fl r_time))
    r.Cluster.variant_status;
  line "coverage_loss: %s" (String.concat "," r.Cluster.coverage_loss);
  List.iteri (fun i inc -> line "fault_incident[%d]: %s" i (F.to_json inc))
    r.Cluster.fault_incidents;
  line "bytes_on_wire: %d" r.Cluster.bytes_on_wire;
  line "msgs_on_wire: %d" r.Cluster.msgs_on_wire;
  let t = r.Cluster.traffic in
  line "traffic: ship=%d batch=%d release=%d ack=%d flow=%d order=%d"
    Cluster.(t.tf_ship) Cluster.(t.tf_batch) Cluster.(t.tf_release)
    Cluster.(t.tf_ack) Cluster.(t.tf_flow) Cluster.(t.tf_order);
  List.iter
    (fun (name, (st : Net.stats)) ->
      line "link %s: msgs=%d bytes=%d retransmits=%d" name st.Net.s_msgs st.Net.s_bytes
        st.Net.s_retransmits)
    r.Cluster.link_stats;
  List.iter
    (fun (name, cells) ->
      line "hist %s: %s" name
        (String.concat " "
           (List.map (fun (ub, c) -> Printf.sprintf "%s:%d" (fl ub) c) cells)))
    r.Cluster.histograms;
  List.iteri
    (fun i (st : M.stats) ->
      line "node[%d]: total=%s ctx=%d pressure_peak=%s" i (fl st.M.total_time)
        st.M.context_switches (fl st.M.cache_pressure_peak))
    r.Cluster.node_stats;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scenario corpus *)

let work c = Trace.Work { func = "f"; cost = c }
let wr args = Trace.Sys (Sc.write ~args ())
let rd args = Trace.Sys (Sc.read ~args ())
let names n = List.init n (fun i -> Printf.sprintf "v%d" i)

(* Read-heavy mix with periodic writes: exercises batching, lockstep and
   replication in one stream. *)
let mixed_trace () =
  List.concat
    (List.init 12 (fun i ->
         [ work 8.0; rd [ 3L; Int64.of_int i ] ]
         @ (if i mod 4 = 0 then [ wr [ 1L; Int64.of_int i ] ] else [])))

(* Locks under spawned threads: weak-determinism order crosses the wire. *)
let mt_trace () =
  let worker tag =
    [ work 12.0; Trace.Lock 0; work 2.0; Trace.Unlock 0; wr [ 1L; tag ] ]
  in
  [ Trace.Spawn (worker 10L) ] @ worker 0L

let diverge_at ~pos ~tag n =
  List.init n (fun v ->
      List.concat
        (List.init 8 (fun i ->
             let x = if v = n - 1 && i = pos then tag else Int64.of_int i in
             [ work 4.0; wr [ 1L; x ] ])))

let quarantine_policy =
  { Nxe.policy = Nxe.Quarantine; heartbeat_timeout = 400.0; restart_backoff = 50.0 }

let cfg ?(nodes = 2) ?(ship = Cluster.Selective_replicated) ?fault_policy telemetry =
  let c = { Cluster.default_config with nodes; ship; telemetry } in
  match fault_policy with Some fp -> { c with Cluster.fault_policy = fp } | None -> c

type scenario = {
  s_name : string;
  s_run : telemetry:Tel.sink option -> Cluster.report;
}

let sc name run = { s_name = name; s_run = run }

let scenarios =
  [
    sc "cluster_naive_clean" (fun ~telemetry ->
        Cluster.run_traces
          ~config:(cfg ~ship:Cluster.Full_remote_lockstep telemetry)
          ~names:(names 3)
          (List.init 3 (fun _ -> mixed_trace ())));
    sc "cluster_selective_clean" (fun ~telemetry ->
        Cluster.run_traces
          ~config:(cfg ~ship:Cluster.Selective telemetry)
          ~names:(names 3)
          (List.init 3 (fun _ -> mixed_trace ())));
    sc "cluster_replicated_clean" (fun ~telemetry ->
        Cluster.run_traces
          ~config:(cfg ~nodes:3 ~ship:Cluster.Selective_replicated telemetry)
          ~names:(names 3)
          (List.init 3 (fun _ -> mixed_trace ())));
    sc "cluster_mt_order" (fun ~telemetry ->
        Cluster.run_traces
          ~config:(cfg ~ship:Cluster.Full_remote_lockstep telemetry)
          ~names:(names 2)
          (List.init 2 (fun _ -> mt_trace ())));
    sc "cluster_diverge_arg" (fun ~telemetry ->
        Cluster.run_traces
          ~config:(cfg ~ship:Cluster.Selective telemetry)
          ~names:(names 3) (diverge_at ~pos:5 ~tag:777L 3));
    sc "cluster_remote_quarantine" (fun ~telemetry ->
        (* The stalled follower sits on node 1: N−1 completion with the
           same coverage-loss accounting the local engine produces. *)
        let faults =
          Faults.make [ { Faults.i_variant = 1; i_at = 2; i_kind = Faults.Stall } ]
        in
        Cluster.run_traces
          ~config:(cfg ~fault_policy:quarantine_policy telemetry)
          ~faults
          ~coverage:[ [ "asan"; "msan" ]; [ "msan" ]; [ "asan" ] ]
          ~names:(names 3) (diverge_at ~pos:(-1) ~tag:0L 3));
  ]

(* ------------------------------------------------------------------ *)
(* Harness *)

let regen_dir = Sys.getenv_opt "BUNSHIN_REGEN_GOLDEN"

let golden_path name =
  match regen_dir with
  | Some d -> Filename.concat d (name ^ ".golden")
  | None -> Filename.concat "golden" (name ^ ".golden")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let () =
  let failures = ref [] in
  let fail s = failures := s :: !failures in
  List.iter
    (fun s ->
      let base = render (s.s_run ~telemetry:None) in
      let with_tel = render (s.s_run ~telemetry:(Some (Tel.create ()))) in
      if with_tel <> base then
        fail (s.s_name ^ ": telemetry-attached report differs from bare run");
      (match regen_dir with
       | Some _ -> write_file (golden_path s.s_name) base
       | None ->
         let path = golden_path s.s_name in
         if not (Sys.file_exists path) then fail (s.s_name ^ ": missing golden " ^ path)
         else begin
           let want = read_file path in
           if want <> base then begin
             fail (s.s_name ^ ": report drifted from golden");
             write_file (s.s_name ^ ".fresh") base
           end
         end);
      print_string ("golden " ^ s.s_name ^ ": checked\n"))
    scenarios;
  match !failures with
  | [] -> if regen_dir <> None then print_string "goldens regenerated\n"
  | fs ->
    List.iter (fun f -> prerr_endline ("FAIL " ^ f)) fs;
    exit 1
