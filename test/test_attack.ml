(* Tests for Bunshin_attack: the RIPE model (Table 3) and the CVE case
   studies (Table 4), plus workload-model sanity (suites, servers). *)

module Ripe = Bunshin_attack.Ripe
module Cve = Bunshin_attack.Cve
module Forensics = Bunshin_forensics.Forensics
module Spec = Bunshin_workloads.Spec
module Mt = Bunshin_workloads.Multithreaded
module Server = Bunshin_workloads.Server
module Bench = Bunshin_workloads.Bench
module Program = Bunshin_program.Program
module Trace = Bunshin_program.Trace
module San = Bunshin_sanitizer.Sanitizer
module Rng = Bunshin_util.Rng

(* ------------------------------------------------------------------ *)
(* RIPE (Table 3) *)

let test_ripe_population () =
  Alcotest.(check int) "3840 combos" 3840 (List.length Ripe.combos)

let test_ripe_vanilla_row () =
  let s, p, f, n = Ripe.table Ripe.Vanilla in
  Alcotest.(check (list int)) "vanilla row" [ 114; 16; 720; 2990 ] [ s; p; f; n ]

let test_ripe_asan_row () =
  let s, p, f, n = Ripe.table Ripe.With_asan in
  Alcotest.(check (list int)) "asan row" [ 8; 0; 842; 2990 ] [ s; p; f; n ]

let test_ripe_bunshin_row () =
  let s, p, f, n = Ripe.table (Ripe.With_bunshin 2) in
  Alcotest.(check (list int)) "bunshin row" [ 8; 0; 842; 2990 ] [ s; p; f; n ]

let test_ripe_bunshin_equals_asan_exactly () =
  (* Not just the same count: the same 8 attacks survive. *)
  Alcotest.(check (list int)) "same survivors" (Ripe.surviving_ids Ripe.With_asan)
    (Ripe.surviving_ids (Ripe.With_bunshin 2));
  Alcotest.(check (list int)) "n=3 too" (Ripe.surviving_ids Ripe.With_asan)
    (Ripe.surviving_ids (Ripe.With_bunshin 3))

let test_ripe_survivors_are_intra_object () =
  let surviving = Ripe.surviving_ids Ripe.With_asan in
  List.iter
    (fun id ->
      let c = List.nth Ripe.combos id in
      Alcotest.(check bool) "struct func ptr target" true (c.Ripe.target = Ripe.Struct_func_ptr);
      Alcotest.(check bool) "direct technique" true (c.Ripe.technique = Ripe.Direct))
    surviving

let test_ripe_asan_never_worse () =
  (* ASan never lets through an attack that vanilla stopped. *)
  List.iter
    (fun c ->
      let v = Ripe.classify Ripe.Vanilla c and a = Ripe.classify Ripe.With_asan c in
      if a = Ripe.Succeed then
        Alcotest.(check bool) "asan survivor also succeeded vanilla" true (v = Ripe.Succeed))
    Ripe.combos

let test_ripe_structural_consistency () =
  List.iter
    (fun c ->
      let v = Ripe.classify Ripe.Vanilla c in
      let a = Ripe.classify Ripe.With_asan c in
      Alcotest.(check bool) "not-possible stable across envs" true
        ((v = Ripe.Not_possible) = (a = Ripe.Not_possible)))
    Ripe.combos

(* ------------------------------------------------------------------ *)
(* CVEs (Table 4) *)

let test_cve_all_detected_by_bunshin () =
  List.iter
    (fun case ->
      let v = Cve.evaluate case in
      Alcotest.(check bool) (case.Cve.c_program ^ " full sanitizer detects") true
        v.Cve.v_full_sanitizer;
      Alcotest.(check bool) (case.Cve.c_program ^ " bunshin detects") true
        v.Cve.v_bunshin_detects;
      Alcotest.(check bool) (case.Cve.c_program ^ " benign clean") true v.Cve.v_benign_clean;
      (* Every detection ships its forensics: a blamed variant and, since
         the detecting side's sanitizer fired, an attributed check site. *)
      match v.Cve.v_incident with
      | None -> Alcotest.fail (case.Cve.c_program ^ " detection lacks an incident")
      | Some inc ->
        Alcotest.(check bool) (case.Cve.c_program ^ " check site attributed") true
          (match inc.Forensics.inc_check_site with
           | Some cs -> cs.Forensics.cs_check_id >= 0
           | None -> false))
    Cve.cases

let test_cve_check_lives_in_variant_a () =
  (* The §5.3 investigation: the vulnerable function is protected by the
     variant that keeps its checks. *)
  List.iter
    (fun case ->
      let v = Cve.evaluate case in
      Alcotest.(check bool) (case.Cve.c_program ^ " variant A detects") true v.Cve.v_variant_a)
    Cve.cases

let test_cve_five_rows () =
  Alcotest.(check int) "five cases" 5 (List.length Cve.cases);
  let sanitizers = List.map (fun c -> c.Cve.c_sanitizer) Cve.cases in
  Alcotest.(check int) "four ASan" 4 (List.length (List.filter (( = ) "ASan") sanitizers));
  Alcotest.(check int) "one UBSan" 1 (List.length (List.filter (( = ) "UBSan") sanitizers))

let test_cve_nginx_divergence_story () =
  (* Paper §5.3: when the overflow triggers, variant A issues the report
     write while variant B proceeds — observable stream divergence. *)
  let nginx = List.hd Cve.cases in
  let v = Cve.evaluate nginx in
  Alcotest.(check bool) "A detects" true v.Cve.v_variant_a;
  Alcotest.(check bool) "B alone does not" false v.Cve.v_variant_b;
  Alcotest.(check bool) "streams diverge" true v.Cve.v_diverged

let test_cve_heartbleed_leaks_without_checks () =
  (* Variant B (no checks in the heartbeat parser) leaks the secret to the
     wire — the leak the selective lockstep catches at IO writes. *)
  let ossl = List.find (fun c -> c.Cve.c_cve = "2014-0160") Cve.cases in
  let v = Cve.evaluate ossl in
  Alcotest.(check bool) "diverged at the response write" true v.Cve.v_diverged

(* ------------------------------------------------------------------ *)
(* Workload models *)

let test_spec_has_19 () =
  Alcotest.(check int) "19 benchmarks" 19 (List.length Spec.all)

let test_spec_outliers_hot () =
  Alcotest.(check bool) "hmmer hot" true (Spec.hot_function_share (Spec.find "hmmer") > 0.9);
  Alcotest.(check bool) "lbm hot" true (Spec.hot_function_share (Spec.find "lbm") > 0.9);
  Alcotest.(check bool) "gcc flat" true (Spec.hot_function_share (Spec.find "gcc") < 0.5)

let test_spec_gcc_msan_incompatible () =
  Alcotest.(check bool) "gcc no msan" false (Spec.find "gcc").Bench.msan_compatible;
  Alcotest.(check bool) "others ok" true (Spec.find "mcf").Bench.msan_compatible

let test_spec_asan_average_near_107 () =
  (* The §5.4 headline: ASan averages ~107% over SPEC. *)
  let ohs =
    List.map
      (fun b -> Program.overhead_of_build (Program.full [ San.asan ] b.Bench.prog))
      Spec.all
  in
  let avg = Bunshin_util.Stats.mean ohs in
  Alcotest.(check bool) (Printf.sprintf "avg %.3f in [0.9, 1.3]" avg) true
    (avg >= 0.9 && avg <= 1.3)

let test_spec_ubsan_average_near_228 () =
  let ohs =
    List.map
      (fun b -> Program.overhead_of_build (Program.full San.ubsan_subs b.Bench.prog))
      Spec.all
  in
  let avg = Bunshin_util.Stats.mean ohs in
  Alcotest.(check bool) (Printf.sprintf "avg %.3f in [1.9, 2.7]" avg) true
    (avg >= 1.9 && avg <= 2.7)

let test_spec_dealii_ubsan_outlier () =
  let oh b = Program.overhead_of_build (Program.full San.ubsan_subs (Spec.find b).Bench.prog) in
  let dealii = oh "dealII" and mcf = oh "mcf" in
  Alcotest.(check bool) (Printf.sprintf "dealII %.2f > 1.5x mcf %.2f" dealii mcf) true
    (dealii > 1.5 *. mcf)

let test_spec_traces_deterministic () =
  let b = Spec.find "bzip2" in
  let t1 = b.Bench.prog.Program.gen_trace (Rng.create 5) in
  let t2 = b.Bench.prog.Program.gen_trace (Rng.create 5) in
  Alcotest.(check bool) "same trace" true (t1 = t2)

let test_multithreaded_population () =
  Alcotest.(check int) "11 splash" 11 (List.length Mt.splash);
  Alcotest.(check int) "13 parsec" 13 (List.length Mt.parsec);
  let unsupported = List.filter (fun b -> not b.Bench.nxe_supported) Mt.parsec in
  Alcotest.(check int) "7 unsupported parsec" 7 (List.length unsupported);
  List.iter
    (fun b ->
      Alcotest.(check bool) (b.Bench.name ^ " has reason") true
        (b.Bench.unsupported_reason <> None))
    unsupported

let test_multithreaded_traces_have_threads () =
  let b = Mt.find "barnes" in
  let t = b.Bench.prog.Program.gen_trace (Rng.create 1) in
  let spawns = List.length (List.filter (function Trace.Spawn _ -> true | _ -> false) t) in
  Alcotest.(check int) "3 workers spawned" 3 spawns

let test_server_baseline_latency_1kb () =
  (* Table 2: lighttpd, 1 KB files, 64 connections: ~10.3 us/request. *)
  let requests = 100 in
  let bench = Server.make Server.Lighttpd ~file_kb:1 ~connections:64 ~requests in
  let p = Bunshin_profile.Profile.measure (Program.baseline bench.Bench.prog) ~seed:1 in
  let us =
    Server.per_request_us ~kind:Server.Lighttpd ~file_kb:1 ~requests
      ~total_time:p.Bunshin_profile.Profile.total_time
  in
  Alcotest.(check bool) (Printf.sprintf "%.2f in [8, 13]" us) true (us >= 8.0 && us <= 13.0)

let test_server_baseline_latency_1mb () =
  let requests = 10 in
  let bench = Server.make Server.Lighttpd ~file_kb:1024 ~connections:64 ~requests in
  let p = Bunshin_profile.Profile.measure (Program.baseline bench.Bench.prog) ~seed:1 in
  let us =
    Server.per_request_us ~kind:Server.Lighttpd ~file_kb:1024 ~requests
      ~total_time:p.Bunshin_profile.Profile.total_time
  in
  Alcotest.(check bool) (Printf.sprintf "%.1f in [900, 1100]" us) true
    (us >= 900.0 && us <= 1100.0)

let test_server_concurrency_amortizes () =
  let run conns =
    let requests = 100 in
    let bench = Server.make Server.Lighttpd ~file_kb:1 ~connections:conns ~requests in
    let p = Bunshin_profile.Profile.measure (Program.baseline bench.Bench.prog) ~seed:1 in
    Server.per_request_us ~kind:Server.Lighttpd ~file_kb:1 ~requests
      ~total_time:p.Bunshin_profile.Profile.total_time
  in
  let l64 = run 64 and l1024 = run 1024 in
  Alcotest.(check bool) (Printf.sprintf "%.2f > %.2f" l64 l1024) true (l64 > l1024)

let test_server_nginx_multithreaded () =
  let bench = Server.make Server.Nginx ~file_kb:1 ~connections:64 ~requests:80 in
  Alcotest.(check int) "4 workers" 4 bench.Bench.threads;
  let t = bench.Bench.prog.Program.gen_trace (Rng.create 1) in
  let spawns = List.length (List.filter (function Trace.Spawn _ -> true | _ -> false) t) in
  Alcotest.(check int) "3 spawned workers" 3 spawns;
  Alcotest.(check bool) "uses accept mutex" true
    (List.exists (function Trace.Lock _ -> true | _ -> false) t)

let () =
  Alcotest.run ~and_exit:false "bunshin_attack_workloads"
    [
      ( "ripe",
        [
          Alcotest.test_case "population" `Quick test_ripe_population;
          Alcotest.test_case "vanilla row" `Quick test_ripe_vanilla_row;
          Alcotest.test_case "asan row" `Quick test_ripe_asan_row;
          Alcotest.test_case "bunshin row" `Quick test_ripe_bunshin_row;
          Alcotest.test_case "bunshin = asan exactly" `Quick test_ripe_bunshin_equals_asan_exactly;
          Alcotest.test_case "survivors intra-object" `Quick test_ripe_survivors_are_intra_object;
          Alcotest.test_case "asan never worse" `Quick test_ripe_asan_never_worse;
          Alcotest.test_case "structural consistency" `Quick test_ripe_structural_consistency;
        ] );
      ( "cve",
        [
          Alcotest.test_case "all detected" `Quick test_cve_all_detected_by_bunshin;
          Alcotest.test_case "variant A holds check" `Quick test_cve_check_lives_in_variant_a;
          Alcotest.test_case "five rows" `Quick test_cve_five_rows;
          Alcotest.test_case "nginx divergence story" `Quick test_cve_nginx_divergence_story;
          Alcotest.test_case "heartbleed leak" `Quick test_cve_heartbleed_leaks_without_checks;
        ] );
      ( "spec",
        [
          Alcotest.test_case "19 benchmarks" `Quick test_spec_has_19;
          Alcotest.test_case "outliers hot" `Quick test_spec_outliers_hot;
          Alcotest.test_case "gcc msan incompatible" `Quick test_spec_gcc_msan_incompatible;
          Alcotest.test_case "asan avg ~107%" `Quick test_spec_asan_average_near_107;
          Alcotest.test_case "ubsan avg ~228%" `Quick test_spec_ubsan_average_near_228;
          Alcotest.test_case "dealII ubsan outlier" `Quick test_spec_dealii_ubsan_outlier;
          Alcotest.test_case "traces deterministic" `Quick test_spec_traces_deterministic;
        ] );
      ( "multithreaded",
        [
          Alcotest.test_case "population" `Quick test_multithreaded_population;
          Alcotest.test_case "threads spawned" `Quick test_multithreaded_traces_have_threads;
        ] );
      ( "server",
        [
          Alcotest.test_case "1kb latency" `Quick test_server_baseline_latency_1kb;
          Alcotest.test_case "1mb latency" `Quick test_server_baseline_latency_1mb;
          Alcotest.test_case "concurrency amortizes" `Quick test_server_concurrency_amortizes;
          Alcotest.test_case "nginx multithreaded" `Quick test_server_nginx_multithreaded;
        ] );
    ]

(* Appended: micro-RIPE — executable attack programs behind Table 3. *)
module Rir = Bunshin_attack.Ripe_ir

let intra c = c.Rir.target = Rir.Struct_func_ptr

let micro_outcomes = lazy (List.map (fun c -> (c, Rir.evaluate c)) Rir.combos)

let test_micro_ripe_vanilla_all_succeed () =
  List.iter
    (fun (c, o) ->
      Alcotest.(check bool)
        (Format.asprintf "%a vanilla" Rir.pp_combo c)
        true o.Rir.ro_vanilla_succeeds)
    (Lazy.force micro_outcomes)

let test_micro_ripe_asan_catches_cross_object () =
  List.iter
    (fun (c, o) ->
      if not (intra c) then
        Alcotest.(check bool) (Format.asprintf "%a asan" Rir.pp_combo c) true o.Rir.ro_asan_detects)
    (Lazy.force micro_outcomes)

let test_micro_ripe_intra_object_survives () =
  (* RIPE's 8: intra-object overflows are out of ASan's scope and produce
     no divergence (both variants behave identically). *)
  List.iter
    (fun (c, o) ->
      if intra c then begin
        Alcotest.(check bool) (Format.asprintf "%a asan misses" Rir.pp_combo c) false
          o.Rir.ro_asan_detects;
        Alcotest.(check bool) (Format.asprintf "%a bunshin misses" Rir.pp_combo c) false
          o.Rir.ro_bunshin_detects
      end)
    (Lazy.force micro_outcomes)

let test_micro_ripe_bunshin_equals_asan () =
  List.iter
    (fun (c, o) ->
      Alcotest.(check bool)
        (Format.asprintf "%a bunshin = asan" Rir.pp_combo c)
        o.Rir.ro_asan_detects o.Rir.ro_bunshin_detects)
    (Lazy.force micro_outcomes)

let test_micro_ripe_detections_carry_incidents () =
  List.iter
    (fun (c, o) ->
      Alcotest.(check bool)
        (Format.asprintf "%a incident iff detected" Rir.pp_combo c)
        o.Rir.ro_bunshin_detects
        (o.Rir.ro_incident <> None))
    (Lazy.force micro_outcomes)

let test_micro_ripe_benign_clean () =
  List.iter
    (fun (c, o) ->
      Alcotest.(check bool) (Format.asprintf "%a benign" Rir.pp_combo c) true o.Rir.ro_benign_clean)
    (Lazy.force micro_outcomes)

let test_micro_ripe_weaker_defenses () =
  (* Frame-internal fp targets evade stack cookies (they only guard the
     return path); whole-function reuse evades coarse CFI. *)
  List.iter
    (fun (c, o) ->
      Alcotest.(check bool) (Format.asprintf "%a cookie" Rir.pp_combo c) false
        o.Rir.ro_cookie_detects;
      Alcotest.(check bool) (Format.asprintf "%a cfi" Rir.pp_combo c) false o.Rir.ro_cfi_detects)
    (Lazy.force micro_outcomes)

let () =
  Alcotest.run ~and_exit:false "bunshin_micro_ripe"
    [
      ( "micro-ripe",
        [
          Alcotest.test_case "vanilla succeeds" `Quick test_micro_ripe_vanilla_all_succeed;
          Alcotest.test_case "asan catches cross-object" `Quick test_micro_ripe_asan_catches_cross_object;
          Alcotest.test_case "intra-object survives" `Quick test_micro_ripe_intra_object_survives;
          Alcotest.test_case "bunshin = asan" `Quick test_micro_ripe_bunshin_equals_asan;
          Alcotest.test_case "detections carry incidents" `Quick
            test_micro_ripe_detections_carry_incidents;
          Alcotest.test_case "benign clean" `Quick test_micro_ripe_benign_clean;
          Alcotest.test_case "weaker defenses" `Quick test_micro_ripe_weaker_defenses;
        ] );
    ]
