(* Tests for Bunshin_forensics: flight-recorder tape semantics, majority-vote
   blame attribution, mismatch classification, check-site attribution for
   real sanitizer detections, and the incident JSON round trip. *)

open Bunshin_ir
module B = Builder
module San = Bunshin_sanitizer.Sanitizer
module Inst = Bunshin_sanitizer.Instrument
module Sc = Bunshin_syscall.Syscall
module F = Bunshin_forensics.Forensics

let rec_ ?(pos = 0) ?(time = 0.0) name args =
  { F.r_pos = pos; r_name = name; r_args = args; r_time = time }

let issued ?pos ?time name args = F.Issued (rec_ ?pos ?time name args)

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_tape_retention () =
  let t = F.Tape.create ~depth:3 in
  Alcotest.(check int) "depth" 3 (F.Tape.depth t);
  for i = 0 to 4 do
    F.Tape.record t ~pos:i ~time:(float_of_int i)
      (Sc.write ~args:[ 1L; Int64.of_int i ] ())
  done;
  Alcotest.(check int) "recorded counts everything" 5 (F.Tape.recorded t);
  let retained = F.Tape.to_list t in
  Alcotest.(check (list int)) "last 3 retained, oldest first" [ 2; 3; 4 ]
    (List.map (fun r -> r.F.r_pos) retained);
  List.iter
    (fun r ->
      Alcotest.(check string) "name kept" "write" r.F.r_name;
      Alcotest.(check (list int64)) "args kept" [ 1L; Int64.of_int r.F.r_pos ]
        r.F.r_args;
      Alcotest.(check (float 0.0)) "time kept" (float_of_int r.F.r_pos) r.F.r_time)
    retained

let test_tape_find () =
  let t = F.Tape.create ~depth:2 in
  for i = 0 to 3 do
    F.Tape.record t ~pos:i ~time:0.0 (Sc.write ~args:[ Int64.of_int i ] ())
  done;
  Alcotest.(check bool) "evicted slot gone" true (F.Tape.find t ~pos:0 = None);
  (match F.Tape.find t ~pos:3 with
   | Some r -> Alcotest.(check (list int64)) "retained slot found" [ 3L ] r.F.r_args
   | None -> Alcotest.fail "slot 3 should be retained")

let test_tape_bad_depth () =
  Alcotest.check_raises "depth 0 rejected"
    (Invalid_argument "Forensics.Tape.create: depth must be >= 1") (fun () ->
      ignore (F.Tape.create ~depth:0))

(* ------------------------------------------------------------------ *)
(* Blame attribution *)

let test_blame_majority_3 () =
  (* Two agree, one differs: the outlier is blamed no matter who was
     flagged by the monitor's first failing comparison. *)
  let votes =
    [| issued "write" [ 1L; 5L ]; issued "write" [ 1L; 5L ]; issued "write" [ 1L; 6L ] |]
  in
  let blamed, basis = F.blame ~votes ~flagged:1 in
  Alcotest.(check int) "outlier blamed" 2 blamed;
  Alcotest.(check bool) "majority of 2" true (basis = F.Majority 2)

let test_blame_majority_5 () =
  let w5 = issued "write" [ 1L; 5L ] and w6 = issued "write" [ 1L; 6L ] in
  let blamed, basis = F.blame ~votes:[| w5; w6; w5; w5; w5 |] ~flagged:1 in
  Alcotest.(check int) "outlier blamed" 1 blamed;
  Alcotest.(check bool) "majority of 4" true (basis = F.Majority 4);
  (* The leader itself can be the outlier: variant 0 went off-script but
     the monitor flags the first follower whose comparison failed. *)
  let blamed, basis = F.blame ~votes:[| w6; w5; w5; w5; w5 |] ~flagged:1 in
  Alcotest.(check int) "leader blamed" 0 blamed;
  Alcotest.(check bool) "majority of 4 again" true (basis = F.Majority 4)

let test_blame_tie_n2 () =
  let votes = [| issued "write" [ 1L; 5L ]; issued "write" [ 1L; 6L ] |] in
  let blamed, basis = F.blame ~votes ~flagged:1 in
  Alcotest.(check int) "flagged variant blamed on tie" 1 blamed;
  Alcotest.(check bool) "tie" true (basis = F.Tie)

let test_blame_pending_abstains () =
  (* A variant that never reached the slot casts no ballot: 1 vs 1 among
     the voters is a tie even with three variants. *)
  let votes = [| issued "write" [ 1L; 5L ]; issued "write" [ 1L; 6L ]; F.Pending |] in
  let blamed, basis = F.blame ~votes ~flagged:1 in
  Alcotest.(check int) "falls back to flagged" 1 blamed;
  Alcotest.(check bool) "tie" true (basis = F.Tie)

let test_classify () =
  let w5 = issued "write" [ 1L; 5L ] in
  Alcotest.(check bool) "same name, different args" true
    (F.classify ~votes:[| w5; issued "write" [ 1L; 6L ] |] ~blamed:1
     = F.Argument_mismatch);
  Alcotest.(check bool) "different syscall" true
    (F.classify ~votes:[| w5; issued "read" [ 3L; 5L ] |] ~blamed:1
     = F.Sequence_mismatch);
  Alcotest.(check bool) "one side exited" true
    (F.classify ~votes:[| w5; F.Exited |] ~blamed:1 = F.Premature_exit)

(* ------------------------------------------------------------------ *)
(* Check-site attribution, against real sanitizer detections *)

let detect_with san m args =
  let inst = Inst.apply_exn [ san ] m in
  let r = Interp.run inst ~entry:"main" ~args in
  match r.Interp.outcome with
  | Interp.Detected d -> (r, d)
  | _ -> Alcotest.fail "expected a sanitizer detection"

let overflow_prog () =
  let b = B.create "of" in
  B.start_func b ~name:"main" ~params:[ "i" ];
  let buf = B.alloca b 4 in
  let p = B.gep b buf (Ast.Reg "i") in
  B.store b (B.cst 1) p;
  B.ret b (Some (B.cst 0));
  B.finish b

let uninit_prog () =
  let b = B.create "uninit" in
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "malloc" [ B.cst 1 ] in
  let v = B.load b p in
  B.call_void b "print" [ v ];
  B.ret b None;
  B.finish b

let test_check_site_asan () =
  let _, d = detect_with San.asan (overflow_prog ()) [ 10L ] in
  let cs = F.check_site_of_detection ~variant:1 d in
  Alcotest.(check int) "variant" 1 cs.F.cs_variant;
  Alcotest.(check string) "pass" "asan" cs.F.cs_pass;
  Alcotest.(check string) "handler" "__asan_report_store" cs.F.cs_handler;
  Alcotest.(check string) "func" "main" cs.F.cs_func;
  Alcotest.(check bool) "check id parsed from san.fail.N" true (cs.F.cs_check_id >= 0);
  Alcotest.(check string) "sink block"
    (Printf.sprintf "san.fail.%d" cs.F.cs_check_id)
    cs.F.cs_block

let test_check_site_msan () =
  let _, d = detect_with San.msan (uninit_prog ()) [] in
  let cs = F.check_site_of_detection ~variant:0 d in
  Alcotest.(check string) "pass" "msan" cs.F.cs_pass;
  Alcotest.(check string) "handler" "__msan_report" cs.F.cs_handler;
  Alcotest.(check string) "func" "main" cs.F.cs_func;
  Alcotest.(check bool) "check id parsed" true (cs.F.cs_check_id >= 0)

let test_pass_of_handler () =
  Alcotest.(check string) "asan" "asan" (F.pass_of_handler "__asan_report_load");
  Alcotest.(check string) "msan" "msan" (F.pass_of_handler "__msan_report");
  Alcotest.(check string) "stack cookie" "stackcookie"
    (F.pass_of_handler "__stackcookie_report");
  Alcotest.(check string) "interpreter trap" "ir" (F.pass_of_handler "unreachable");
  Alcotest.(check string) "unknown" "" (F.pass_of_handler "somebody_else");
  Alcotest.(check int) "block id" 7 (F.check_id_of_block "san.fail.7");
  Alcotest.(check int) "non-sink block" (-1) (F.check_id_of_block "entry")

(* ------------------------------------------------------------------ *)
(* Incidents from interpreter runs *)

let print_prog () =
  let b = B.create "p" in
  B.start_func b ~name:"main" ~params:[ "x" ];
  B.call_void b "print" [ Ast.Reg "x" ];
  B.ret b (Some (B.cst 0));
  B.finish b

let test_incident_of_identical_runs () =
  let m = print_prog () in
  let r = Interp.run m ~entry:"main" ~args:[ 7L ] in
  Alcotest.(check bool) "no incident" true (F.incident_of_runs [ r; r ] = None)

let test_incident_of_divergent_runs () =
  let m = print_prog () in
  let r1 = Interp.run m ~entry:"main" ~args:[ 7L ] in
  let r2 = Interp.run m ~entry:"main" ~args:[ 8L ] in
  (* Three variants, one outlier: majority blame without any NXE. *)
  match F.incident_of_runs [ r1; r1; r2 ] with
  | None -> Alcotest.fail "streams diverge, incident expected"
  | Some inc ->
    Alcotest.(check int) "divergent slot" 0 inc.F.inc_position;
    Alcotest.(check int) "outlier blamed" 2 inc.F.inc_blamed;
    Alcotest.(check bool) "majority basis" true (inc.F.inc_basis = F.Majority 2);
    Alcotest.(check bool) "argument mismatch" true
      (inc.F.inc_mismatch = F.Argument_mismatch);
    Alcotest.(check int) "one tape per variant" 3 (Array.length inc.F.inc_tapes)

let test_incident_with_detection_join () =
  (* The §5.3 story end to end, without the NXE: the ASan variant issues
     the report write, the unchecked variant does not; the 2-variant tie
     is broken by the detection and the check site is attributed. *)
  let m = overflow_prog () in
  let inst = Inst.apply_exn [ San.asan ] m in
  let ra = Interp.run inst ~entry:"main" ~args:[ 10L ] in
  let rb = Interp.run m ~entry:"main" ~args:[ 10L ] in
  (match ra.Interp.outcome with
   | Interp.Detected _ -> ()
   | _ -> Alcotest.fail "asan variant should detect");
  match F.incident_of_runs [ ra; rb ] with
  | None -> Alcotest.fail "report write diverges the streams"
  | Some inc ->
    let det r =
      match r.Interp.outcome with Interp.Detected d -> Some d | _ -> None
    in
    let inc = F.refine_with_detections inc [| det ra; det rb |] in
    Alcotest.(check int) "detecting variant blamed" 0 inc.F.inc_blamed;
    Alcotest.(check bool) "tie broken by detection" true
      (inc.F.inc_basis = F.Tie_broken_by_detection);
    (match inc.F.inc_check_site with
     | Some cs ->
       Alcotest.(check string) "asan attributed" "asan" cs.F.cs_pass;
       Alcotest.(check string) "in main" "main" cs.F.cs_func
     | None -> Alcotest.fail "check site should be attributed");
    let text = F.to_text inc in
    Alcotest.(check bool) "text names the blame" true
      (let re = "blamed: variant 0" in
       let rec find i =
         i + String.length re <= String.length text
         && (String.sub text i (String.length re) = re || find (i + 1))
       in
       find 0)

(* ------------------------------------------------------------------ *)
(* JSON round trip *)

let test_json_roundtrip_extremes () =
  (* Hand-built incident with full-range int64 arguments and every vote
     constructor: the decimal-string encoding must survive the trip. *)
  let votes =
    [|
      issued ~pos:3 ~time:12.5 "write" [ Int64.max_int; Int64.min_int; -1L ];
      F.Exited;
      F.Pending;
    |]
  in
  let tapes =
    [|
      [ rec_ ~pos:2 ~time:1.25 "mmap" [ 4096L ]; rec_ ~pos:3 ~time:12.5 "write" [ 0L ] ];
      [];
      [ rec_ ~pos:0 ~time:0.0 "read" [] ];
    |]
  in
  let inc =
    F.build ~channel:2 ~position:3 ~flagged:1 ~expected:"write(1, 1)"
      ~got:"<exit>" ~time:99.0625 ~votes ~tapes ()
  in
  (match F.of_json (F.to_json inc) with
   | Ok inc' -> Alcotest.(check bool) "round trip equal" true (inc = inc')
   | Error e -> Alcotest.fail ("decode failed: " ^ e));
  (* And with a check site joined in. *)
  let d = { Interp.d_handler = "__msan_report"; d_func = "f"; d_block = "san.fail.2" } in
  let inc = F.refine_with_detections inc [| None; Some d; None |] in
  match F.of_json (F.to_json inc) with
  | Ok inc' -> Alcotest.(check bool) "round trip with site" true (inc = inc')
  | Error e -> Alcotest.fail ("decode failed: " ^ e)

let test_json_roundtrip_real () =
  let m = print_prog () in
  let r1 = Interp.run m ~entry:"main" ~args:[ 7L ] in
  let r2 = Interp.run m ~entry:"main" ~args:[ 8L ] in
  match F.incident_of_runs [ r1; r2 ] with
  | None -> Alcotest.fail "incident expected"
  | Some inc -> (
    match F.of_json (F.to_json inc) with
    | Ok inc' -> Alcotest.(check bool) "round trip equal" true (inc = inc')
    | Error e -> Alcotest.fail ("decode failed: " ^ e))

let test_json_rejects_garbage () =
  Alcotest.(check bool) "not json" true (F.of_json "][" |> Result.is_error);
  Alcotest.(check bool) "wrong shape" true (F.of_json "{\"x\": 1}" |> Result.is_error);
  Alcotest.(check bool) "trailing garbage" true
    (match F.Json.parse "{} junk" with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "bunshin_forensics"
    [
      ( "tape",
        [
          Alcotest.test_case "retention window" `Quick test_tape_retention;
          Alcotest.test_case "find by position" `Quick test_tape_find;
          Alcotest.test_case "bad depth" `Quick test_tape_bad_depth;
        ] );
      ( "blame",
        [
          Alcotest.test_case "majority of 3" `Quick test_blame_majority_3;
          Alcotest.test_case "majority of 5" `Quick test_blame_majority_5;
          Alcotest.test_case "tie at n=2" `Quick test_blame_tie_n2;
          Alcotest.test_case "pending abstains" `Quick test_blame_pending_abstains;
          Alcotest.test_case "mismatch classification" `Quick test_classify;
        ] );
      ( "check-site",
        [
          Alcotest.test_case "asan attribution" `Quick test_check_site_asan;
          Alcotest.test_case "msan attribution" `Quick test_check_site_msan;
          Alcotest.test_case "handler table" `Quick test_pass_of_handler;
        ] );
      ( "incident",
        [
          Alcotest.test_case "identical runs: none" `Quick test_incident_of_identical_runs;
          Alcotest.test_case "divergent runs: majority" `Quick
            test_incident_of_divergent_runs;
          Alcotest.test_case "detection join + text" `Quick test_incident_with_detection_join;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip extremes" `Quick test_json_roundtrip_extremes;
          Alcotest.test_case "round trip real incident" `Quick test_json_roundtrip_real;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
    ]
