(* Tests for Bunshin_machine: event heap, fibers, scheduling, cache model. *)

module Heap = Bunshin_machine.Event_heap
module M = Bunshin_machine.Machine

let cfg ?(cores = 4) ?(quantum = 1.0) ?(ctx = 0.0) ?(llc = 1e9) ?(penalty = 0.5) () =
  { M.default_config with
    cores;
    quantum;
    ctx_switch_cost = ctx;
    llc_capacity = llc;
    miss_penalty = penalty }

let check_time = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Event heap *)

let test_heap_order () =
  let h = Heap.create () in
  Heap.push h 3.0 "c";
  Heap.push h 1.0 "a";
  Heap.push h 2.0 "b";
  let pop () = match Heap.pop h with Some (_, x) -> x | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ];
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1.0 "first";
  Heap.push h 1.0 "second";
  Heap.push h 1.0 "third";
  let pop () = match Heap.pop h with Some (_, x) -> x | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order" [ "first"; "second"; "third" ]
    [ first; second; third ]

let test_heap_many () =
  let h = Heap.create () in
  let rng = Bunshin_util.Rng.create 5 in
  for i = 0 to 999 do
    Heap.push h (Bunshin_util.Rng.float rng 100.0) i
  done;
  Alcotest.(check int) "size" 1000 (Heap.size h);
  let last = ref neg_infinity in
  let sorted = ref true in
  for _ = 1 to 1000 do
    match Heap.pop h with
    | Some (time, _) ->
      if time < !last then sorted := false;
      last := time
    | None -> sorted := false
  done;
  Alcotest.(check bool) "monotone" true !sorted

(* ------------------------------------------------------------------ *)
(* Basic execution *)

let test_single_thread_time () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore (M.spawn m p ~name:"t" (fun () -> M.compute m 100.0));
  M.run m;
  check_time "100us" 100.0 (M.stats m).M.total_time

let test_two_threads_parallel () =
  let m = M.create ~config:(cfg ~cores:2 ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore (M.spawn m p ~name:"a" (fun () -> M.compute m 100.0));
  ignore (M.spawn m p ~name:"b" (fun () -> M.compute m 100.0));
  M.run m;
  check_time "parallel" 100.0 (M.stats m).M.total_time

let test_two_threads_one_core_serialize () =
  let m = M.create ~config:(cfg ~cores:1 ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore (M.spawn m p ~name:"a" (fun () -> M.compute m 100.0));
  ignore (M.spawn m p ~name:"b" (fun () -> M.compute m 100.0));
  M.run m;
  check_time "serialized" 200.0 (M.stats m).M.total_time

let test_context_switch_cost () =
  (* One core, two threads, quantum 10, ctx cost 1: threads alternate. *)
  let m = M.create ~config:(cfg ~cores:1 ~quantum:10.0 ~ctx:1.0 ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore (M.spawn m p ~name:"a" (fun () -> M.compute m 20.0));
  ignore (M.spawn m p ~name:"b" (fun () -> M.compute m 20.0));
  M.run m;
  let s = M.stats m in
  Alcotest.(check bool) "switches happened" true (s.M.context_switches >= 3);
  Alcotest.(check bool) "total > pure compute" true (s.M.total_time > 40.0)

let test_sleep_does_not_use_core () =
  let m = M.create ~config:(cfg ~cores:1 ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore (M.spawn m p ~name:"sleeper" (fun () -> M.sleep m 1000.0));
  ignore (M.spawn m p ~name:"worker" (fun () -> M.compute m 50.0));
  M.run m;
  (* The sleeper does not block the worker's core. *)
  check_time "ends at sleep end" 1000.0 (M.stats m).M.total_time

let test_sequential_compute_accumulates () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore
    (M.spawn m p ~name:"t" (fun () ->
         M.compute m 10.0;
         M.compute m 20.0;
         M.compute m 30.0));
  M.run m;
  check_time "60us" 60.0 (M.stats m).M.total_time

(* ------------------------------------------------------------------ *)
(* Park / wake *)

let test_park_wake () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let log = ref [] in
  let waiter = ref None in
  let t1 =
    M.spawn m p ~name:"waiter" (fun () ->
        M.park m;
        log := "woken" :: !log)
  in
  waiter := Some t1;
  ignore
    (M.spawn m p ~name:"waker" (fun () ->
         M.compute m 50.0;
         log := "waking" :: !log;
         M.wake m t1));
  M.run m;
  Alcotest.(check (list string)) "order" [ "woken"; "waking" ] !log

let test_wake_before_park_not_lost () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let t1 = ref None in
  let target =
    M.spawn m p ~name:"late-parker" (fun () ->
        M.compute m 100.0;
        (* The wake arrived while we were computing. *)
        M.park m)
  in
  t1 := Some target;
  ignore (M.spawn m p ~name:"early-waker" (fun () -> M.wake m target));
  M.run m;
  Alcotest.(check bool) "finished" true (M.thread_finished m target)

(* ------------------------------------------------------------------ *)
(* Forcible termination — the monitor's kill(2). *)

let test_cancel_parked_thread () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let victim = M.spawn m p ~name:"victim" (fun () -> M.park m) in
  ignore
    (M.spawn m p ~name:"monitor" (fun () ->
         M.compute m 30.0;
         M.cancel m victim;
         (* Cancelling an already-finished thread is a no-op. *)
         M.cancel m victim));
  (* Without the cancel this run deadlocks on the parked victim. *)
  M.run m;
  Alcotest.(check bool) "victim finished" true (M.thread_finished m victim);
  check_time "ends at cancel time" 30.0 (M.stats m).M.total_time

let test_cancel_discards_pending_events () =
  (* A thread mid-CPU-burst and one mid-sleep both have events queued in
     the heap; cancellation must turn those into no-ops (the Burst_end
     only frees its core) and neither fiber may ever resume. *)
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let resumed = ref false in
  let burst =
    M.spawn m p ~name:"burst" (fun () ->
        M.compute m 1000.0;
        resumed := true)
  in
  let sleeper =
    M.spawn m p ~name:"sleeper" (fun () ->
        M.sleep m 1000.0;
        resumed := true)
  in
  ignore
    (M.spawn m p ~name:"monitor" (fun () ->
         M.compute m 10.5;
         M.cancel m burst;
         M.cancel m sleeper));
  M.run m;
  Alcotest.(check bool) "no fiber resumed" false !resumed;
  Alcotest.(check bool) "both finished" true
    (M.thread_finished m burst && M.thread_finished m sleeper);
  check_time "ends at cancel, not at burst/sleep end" 10.5 (M.stats m).M.total_time

let test_cancel_self_is_noop () =
  (* A fiber cannot be unwound from inside itself: self-cancel must leave
     it running (callers make it observe a flag instead). *)
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let finished_body = ref false in
  let t = ref None in
  let th =
    M.spawn m p ~name:"self" (fun () ->
        M.compute m 5.0;
        M.cancel m (Option.get !t);
        M.compute m 5.0;
        finished_body := true)
  in
  t := Some th;
  M.run m;
  Alcotest.(check bool) "body ran to completion" true !finished_body;
  check_time "full compute" 10.0 (M.stats m).M.total_time

let test_cancel_proc_kills_all_threads () =
  let m = M.create ~config:(cfg ()) () in
  let pa = M.new_proc m ~name:"victim-proc" ~working_set:1.0 () in
  let pb = M.new_proc m ~name:"monitor-proc" ~working_set:1.0 () in
  let v1 = M.spawn m pa ~name:"v1" (fun () -> M.park m) in
  let v2 = M.spawn m pa ~name:"v2" (fun () -> M.sleep m 500.0) in
  ignore
    (M.spawn m pb ~name:"monitor" (fun () ->
         M.compute m 20.0;
         M.cancel_proc m pa));
  M.run m;
  Alcotest.(check bool) "all victim threads finished" true
    (M.thread_finished m v1 && M.thread_finished m v2);
  check_time "ends at cancel" 20.0 (M.stats m).M.total_time

let test_deadlock_detection () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore (M.spawn m p ~name:"stuck" (fun () -> M.park m));
  Alcotest.(check bool) "raises" true
    (try
       M.run m;
       false
     with M.Deadlock _ -> true)

let test_daemon_does_not_block_exit () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore
    (M.spawn m ~daemon:true p ~name:"background" (fun () ->
         let rec loop () =
           M.compute m 10.0;
           M.sleep m 10.0;
           loop ()
         in
         loop ()));
  ignore (M.spawn m p ~name:"work" (fun () -> M.compute m 25.0));
  M.run m;
  Alcotest.(check bool) "terminates with daemon running" true ((M.stats m).M.total_time >= 25.0)

let test_daemon_contends_for_cores () =
  (* One core: a daemon that computes constantly roughly halves throughput. *)
  let m = M.create ~config:(cfg ~cores:1 ~quantum:5.0 ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore
    (M.spawn m ~daemon:true p ~name:"hog" (fun () ->
         let rec loop () =
           M.compute m 5.0;
           loop ()
         in
         loop ()));
  ignore (M.spawn m p ~name:"work" (fun () -> M.compute m 50.0));
  M.run m;
  Alcotest.(check bool) "slowed by hog" true ((M.stats m).M.total_time >= 90.0)

(* ------------------------------------------------------------------ *)
(* Cache pressure *)

let test_cache_inflation () =
  (* Working sets twice the LLC: compute inflates. *)
  let config = cfg ~cores:4 ~llc:10.0 ~penalty:1.0 () in
  let run_with n_procs =
    let m = M.create ~config () in
    for i = 1 to n_procs do
      let p = M.new_proc m ~name:(string_of_int i) ~working_set:10.0 () in
      ignore (M.spawn m p ~name:"t" (fun () -> M.compute m 100.0))
    done;
    M.run m;
    (M.stats m).M.total_time
  in
  let t1 = run_with 1 in
  let t2 = run_with 2 in
  let t4 = run_with 4 in
  check_time "one proc fits" 100.0 t1;
  Alcotest.(check bool) "two procs inflate" true (t2 > 100.0);
  Alcotest.(check bool) "four inflate more" true (t4 > t2)

let test_pressure_peak_recorded () =
  let config = cfg ~cores:2 ~llc:10.0 () in
  let m = M.create ~config () in
  let p1 = M.new_proc m ~name:"a" ~working_set:10.0 () in
  let p2 = M.new_proc m ~name:"b" ~working_set:10.0 () in
  ignore (M.spawn m p1 ~name:"t" (fun () -> M.compute m 10.0));
  ignore (M.spawn m p2 ~name:"t" (fun () -> M.compute m 10.0));
  M.run m;
  Alcotest.(check bool) "peak = 2x" true ((M.stats m).M.cache_pressure_peak >= 2.0 -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Proc accounting *)

let test_proc_accounting () =
  let m = M.create ~config:(cfg ~cores:2 ()) () in
  let p1 = M.new_proc m ~name:"fast" ~working_set:1.0 () in
  let p2 = M.new_proc m ~name:"slow" ~working_set:1.0 () in
  ignore (M.spawn m p1 ~name:"t" (fun () -> M.compute m 10.0));
  ignore (M.spawn m p2 ~name:"t" (fun () -> M.compute m 30.0));
  M.run m;
  check_time "fast finish" 10.0 (M.proc_finish_time m p1);
  check_time "slow finish" 30.0 (M.proc_finish_time m p2);
  check_time "fast cpu" 10.0 (M.proc_cpu_time m p1);
  check_time "slow cpu" 30.0 (M.proc_cpu_time m p2)

(* ------------------------------------------------------------------ *)
(* Waitq *)

let test_waitq_signal_fifo () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let wq = M.Waitq.create () in
  let log = ref [] in
  for i = 1 to 3 do
    ignore
      (M.spawn m p ~name:(Printf.sprintf "w%d" i) (fun () ->
           M.Waitq.wait m wq;
           log := i :: !log))
  done;
  ignore
    (M.spawn m p ~name:"signaller" (fun () ->
         M.compute m 10.0;
         M.Waitq.signal m wq;
         M.compute m 10.0;
         M.Waitq.signal m wq;
         M.compute m 10.0;
         M.Waitq.signal m wq));
  M.run m;
  Alcotest.(check (list int)) "fifo order" [ 3; 2; 1 ] !log

let test_waitq_broadcast () =
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let wq = M.Waitq.create () in
  let count = ref 0 in
  for i = 1 to 5 do
    ignore
      (M.spawn m p ~name:(Printf.sprintf "w%d" i) (fun () ->
           M.Waitq.wait m wq;
           incr count))
  done;
  ignore
    (M.spawn m p ~name:"b" (fun () ->
         M.compute m 5.0;
         M.Waitq.broadcast m wq));
  M.run m;
  Alcotest.(check int) "all woken" 5 !count

(* ------------------------------------------------------------------ *)
(* Poll: epoll-style readiness batching *)

let test_poll_batch_coalesces () =
  (* Three posts land while the consumer is parked: one scheduler wakeup
     must deliver the whole batch, in post order. *)
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let poll = M.Poll.create () in
  let got = ref [] in
  ignore (M.spawn m p ~name:"consumer" (fun () -> got := M.Poll.wait m poll));
  ignore
    (M.spawn m p ~name:"producer" (fun () ->
         M.compute m 5.0;
         M.Poll.post m poll 7;
         M.Poll.post m poll 8;
         M.Poll.post m poll 7));
  M.run m;
  Alcotest.(check (list int)) "whole batch, post order, dups kept" [ 7; 8; 7 ] !got;
  Alcotest.(check int) "one parked wait" 1 (M.Poll.wakeups poll);
  Alcotest.(check int) "three events" 3 (M.Poll.events poll);
  Alcotest.(check int) "nothing pending" 0 (M.Poll.pending poll)

let test_poll_fast_path_no_park () =
  (* Events already pending when wait is called: it must return at once,
     without a scheduler round-trip, and not count as a wakeup. *)
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let poll = M.Poll.create () in
  let got = ref [] in
  ignore
    (M.spawn m p ~name:"self" (fun () ->
         M.Poll.post m poll 1;
         M.Poll.post m poll 2;
         let t0 = M.now m in
         got := M.Poll.wait m poll;
         check_time "no simulated time elapsed" t0 (M.now m)));
  M.run m;
  Alcotest.(check (list int)) "drained" [ 1; 2 ] !got;
  Alcotest.(check int) "fast path is not a wakeup" 0 (M.Poll.wakeups poll);
  Alcotest.(check int) "events still counted" 2 (M.Poll.events poll)

let test_poll_no_lost_events () =
  (* Many producers posting at staggered times against a looping
     consumer: every id must be delivered exactly once, however the
     batches happen to split. *)
  let m = M.create ~config:(cfg ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let poll = M.Poll.create () in
  let n = 12 in
  let got = ref [] in
  for i = 0 to n - 1 do
    ignore
      (M.spawn m p ~name:(Printf.sprintf "prod%d" i) (fun () ->
           M.sleep m (float_of_int (1 + (i mod 5)));
           M.Poll.post m poll i))
  done;
  ignore
    (M.spawn m p ~name:"consumer" (fun () ->
         while List.length !got < n do
           got := !got @ M.Poll.wait m poll
         done));
  M.run m;
  Alcotest.(check (list int)) "each id exactly once"
    (List.init n (fun i -> i))
    (List.sort compare !got);
  Alcotest.(check int) "events = posts" n (M.Poll.events poll);
  Alcotest.(check bool) "batching amortized wakeups" true (M.Poll.wakeups poll <= n)

(* ------------------------------------------------------------------ *)
(* Determinism *)

let simulate_workload seed =
  let rng = Bunshin_util.Rng.create seed in
  let m = M.create ~config:(cfg ~cores:2 ~quantum:2.0 ~ctx:0.5 ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let trace = ref [] in
  for i = 1 to 5 do
    let cost = Bunshin_util.Rng.float rng 20.0 in
    ignore
      (M.spawn m p ~name:(Printf.sprintf "t%d" i) (fun () ->
           M.compute m cost;
           trace := (i, M.now m) :: !trace))
  done;
  M.run m;
  ((M.stats m).M.total_time, !trace)

let test_determinism () =
  let t1, tr1 = simulate_workload 99 in
  let t2, tr2 = simulate_workload 99 in
  check_time "same total" t1 t2;
  Alcotest.(check bool) "same trace" true (tr1 = tr2)

let prop_total_at_least_critical_path =
  QCheck.Test.make ~name:"machine: makespan >= max thread cost" ~count:50
    QCheck.(list_of_size Gen.(1 -- 8) (float_range 1.0 50.0))
    (fun costs ->
      let m = M.create ~config:(cfg ~cores:4 ()) () in
      let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
      List.iteri
        (fun i c -> ignore (M.spawn m p ~name:(string_of_int i) (fun () -> M.compute m c)))
        costs;
      M.run m;
      (M.stats m).M.total_time +. 1e-6 >= Bunshin_util.Stats.maximum costs)

let prop_work_conservation =
  QCheck.Test.make ~name:"machine: makespan <= serial sum (no ctx cost)" ~count:50
    QCheck.(list_of_size Gen.(1 -- 8) (float_range 1.0 50.0))
    (fun costs ->
      let m = M.create ~config:(cfg ~cores:2 ()) () in
      let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
      List.iteri
        (fun i c -> ignore (M.spawn m p ~name:(string_of_int i) (fun () -> M.compute m c)))
        costs;
      M.run m;
      (M.stats m).M.total_time <= Bunshin_util.Stats.sum costs +. 1e-6)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run ~and_exit:false "bunshin_machine"
    [
      ( "heap",
        [
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "many" `Quick test_heap_many;
        ] );
      ( "execution",
        [
          Alcotest.test_case "single thread time" `Quick test_single_thread_time;
          Alcotest.test_case "parallel threads" `Quick test_two_threads_parallel;
          Alcotest.test_case "one core serializes" `Quick test_two_threads_one_core_serialize;
          Alcotest.test_case "context switch cost" `Quick test_context_switch_cost;
          Alcotest.test_case "sleep frees core" `Quick test_sleep_does_not_use_core;
          Alcotest.test_case "sequential compute" `Quick test_sequential_compute_accumulates;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "park/wake" `Quick test_park_wake;
          Alcotest.test_case "wake before park" `Quick test_wake_before_park_not_lost;
          Alcotest.test_case "cancel parked" `Quick test_cancel_parked_thread;
          Alcotest.test_case "cancel discards events" `Quick test_cancel_discards_pending_events;
          Alcotest.test_case "cancel self no-op" `Quick test_cancel_self_is_noop;
          Alcotest.test_case "cancel proc" `Quick test_cancel_proc_kills_all_threads;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "daemon exit" `Quick test_daemon_does_not_block_exit;
          Alcotest.test_case "daemon contention" `Quick test_daemon_contends_for_cores;
        ] );
      ( "cache",
        [
          Alcotest.test_case "inflation" `Quick test_cache_inflation;
          Alcotest.test_case "pressure peak" `Quick test_pressure_peak_recorded;
        ] );
      ("accounting", [ Alcotest.test_case "per-proc" `Quick test_proc_accounting ]);
      ( "waitq",
        [
          Alcotest.test_case "signal fifo" `Quick test_waitq_signal_fifo;
          Alcotest.test_case "broadcast" `Quick test_waitq_broadcast;
        ] );
      ( "poll",
        [
          Alcotest.test_case "batch coalesces" `Quick test_poll_batch_coalesces;
          Alcotest.test_case "fast path no park" `Quick test_poll_fast_path_no_park;
          Alcotest.test_case "no lost events" `Quick test_poll_no_lost_events;
        ] );
      ( "determinism",
        [ Alcotest.test_case "identical runs" `Quick test_determinism ]
        @ qcheck [ prop_total_at_least_critical_path; prop_work_conservation ] );
    ]

(* Appended: scheduler affinity and timeslice-budget behaviour. *)
let test_affinity_avoids_pingpong () =
  (* Two compute-heavy threads on two cores: with wake affinity and a
     timeslice budget each thread keeps its core; switches stay near the
     minimum (one per thread to start). *)
  let m = M.create ~config:(cfg ~cores:2 ~quantum:50.0 ~ctx:1.0 ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  ignore (M.spawn m p ~name:"a" (fun () -> for _ = 1 to 100 do M.compute m 10.0 done));
  ignore (M.spawn m p ~name:"b" (fun () -> for _ = 1 to 100 do M.compute m 10.0 done));
  M.run m;
  let s = M.stats m in
  Alcotest.(check bool)
    (Printf.sprintf "switches %d <= 4" s.M.context_switches)
    true (s.M.context_switches <= 4)

let test_timeslice_shares_single_core () =
  (* One core, two long threads: both make progress (neither starves) and
     total time is the serial sum. *)
  let m = M.create ~config:(cfg ~cores:1 ~quantum:25.0 ~ctx:0.0 ()) () in
  let p = M.new_proc m ~name:"p" ~working_set:1.0 () in
  let a_done = ref 0.0 and b_done = ref 0.0 in
  ignore (M.spawn m p ~name:"a" (fun () -> M.compute m 200.0; a_done := M.now m));
  ignore (M.spawn m p ~name:"b" (fun () -> M.compute m 200.0; b_done := M.now m));
  M.run m;
  check_time "serial sum" 400.0 (M.stats m).M.total_time;
  (* Fair slicing: the first finisher ends well before the second. *)
  let first = Float.min !a_done !b_done and last = Float.max !a_done !b_done in
  Alcotest.(check bool) "interleaved" true (last -. first < 250.0)

let () =
  Alcotest.run ~and_exit:false "bunshin_machine_sched"
    [
      ( "scheduler",
        [
          Alcotest.test_case "affinity avoids ping-pong" `Quick test_affinity_avoids_pingpong;
          Alcotest.test_case "timeslice sharing" `Quick test_timeslice_shares_single_core;
        ] );
    ]
