(* Tests for the deterministic network model (lib/net). *)

module M = Bunshin_machine.Machine
module Net = Bunshin_net.Net
module Tel = Bunshin_telemetry.Telemetry

let p ?(latency = 50.0) ?(rate = 100.0) ?(loss = 0.0) ?(rto = 200.0) () =
  { Net.latency_us = latency; bytes_per_us = rate; loss; retransmit_us = rto }

(* Run a machine pair until both drain, collecting link deliveries. *)
let run2 src dst =
  let ms = [| src; dst |] in
  let continue_ = ref true in
  while !continue_ do
    let progressed = ref true in
    while !progressed do
      progressed := false;
      Array.iter (fun m -> if M.dispatch_runnable m then progressed := true) ms
    done;
    let best = ref (-1) and bt = ref infinity in
    Array.iteri
      (fun i m ->
        let t = M.next_event_time m in
        if t < !bt then begin bt := t; best := i end)
      ms;
    if !best >= 0 then M.step_event ms.(!best)
    else begin
      (* No pending events anywhere: in-flight deliveries have drained. *)
      if Array.fold_left (fun a m -> a + M.unfinished_nondaemon m) 0 ms > 0 then
        failwith "net test: stuck";
      continue_ := false
    end
  done

let test_fifo_latency () =
  (* Two back-to-back messages: the second serializes behind the first,
     both arrive after the constant latency, in order. *)
  let src = M.create () and dst = M.create () in
  let net = Net.create () in
  let l = Net.link net ~params:(p ~latency:10.0 ~rate:100.0 ()) ~src ~dst "l" in
  let arrivals = ref [] in
  let proc = M.new_proc src ~name:"sender" ~working_set:8.0 () in
  ignore
    (M.spawn src proc ~name:"send" (fun () ->
         Net.send net l ~bytes:1000 (fun () -> arrivals := ("a", M.now dst) :: !arrivals);
         Net.send net l ~bytes:500 (fun () -> arrivals := ("b", M.now dst) :: !arrivals)));
  run2 src dst;
  (match List.rev !arrivals with
   | [ ("a", ta); ("b", tb) ] ->
     (* a: 1000B at 100 B/us -> serialized at 10, +10 latency = 20.
        b: queued behind a -> serialized at 15, arrives 25. *)
     Alcotest.(check (float 1e-9)) "first arrival" 20.0 ta;
     Alcotest.(check (float 1e-9)) "second arrival" 25.0 tb
   | other ->
     Alcotest.failf "expected 2 in-order arrivals, got %d" (List.length other));
  let st = Net.link_stats l in
  Alcotest.(check int) "msgs" 2 st.Net.s_msgs;
  Alcotest.(check int) "bytes" 1500 st.Net.s_bytes;
  Alcotest.(check int) "retransmits" 0 st.Net.s_retransmits

let test_idle_gap () =
  (* A message sent after the link went idle departs immediately. *)
  let src = M.create () and dst = M.create () in
  let net = Net.create () in
  let l = Net.link net ~params:(p ~latency:5.0 ~rate:10.0 ()) ~src ~dst "l" in
  let arrival = ref 0.0 in
  let proc = M.new_proc src ~name:"sender" ~working_set:8.0 () in
  ignore
    (M.spawn src proc ~name:"send" (fun () ->
         M.sleep src 100.0;
         Net.send net l ~bytes:10 (fun () -> arrival := M.now dst)));
  run2 src dst;
  (* departs at 100, +1us serialization, +5 latency *)
  Alcotest.(check (float 1e-9)) "arrival" 106.0 !arrival

let test_loss_determinism () =
  (* Same seed => identical retransmission schedule; loss only delays,
     never drops or reorders. *)
  let run seed =
    let src = M.create () and dst = M.create () in
    let net = Net.create ~seed () in
    let l = Net.link net ~params:(p ~latency:10.0 ~rate:100.0 ~loss:0.3 ()) ~src ~dst "l" in
    let arrivals = ref [] in
    let proc = M.new_proc src ~name:"sender" ~working_set:8.0 () in
    ignore
      (M.spawn src proc ~name:"send" (fun () ->
           for i = 0 to 19 do
             Net.send net l ~bytes:100 (fun () -> arrivals := (i, M.now dst) :: !arrivals)
           done));
    run2 src dst;
    (List.rev !arrivals, Net.link_stats l)
  in
  let a1, s1 = run 42 and a2, s2 = run 42 in
  Alcotest.(check bool) "same schedule" true (a1 = a2);
  Alcotest.(check bool) "some retransmits" true (s1.Net.s_retransmits > 0);
  Alcotest.(check int) "same retransmits" s1.Net.s_retransmits s2.Net.s_retransmits;
  (* retransmitted copies are on the wire *)
  Alcotest.(check int) "bytes include copies"
    (100 * (20 + s1.Net.s_retransmits)) s1.Net.s_bytes;
  (* in-order: arrival times are the identity permutation, monotone *)
  List.iteri (fun i (j, _) -> Alcotest.(check int) "order" i j) a1;
  let rec mono = function
    | (_, t1) :: ((_, t2) :: _ as rest) -> t1 <= t2 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone arrivals" true (mono a1);
  let a3, _ = run 43 in
  Alcotest.(check bool) "different seed differs" true (a1 <> a3)

let test_totals_and_links () =
  let src = M.create () and dst = M.create () in
  let net = Net.create () in
  let l1 = Net.link net ~params:(p ()) ~src ~dst "a" in
  let l2 = Net.link net ~params:(p ()) ~src ~dst "b" in
  Alcotest.(check (list string)) "creation order" [ "a"; "b" ]
    (List.map Net.link_name (Net.links net));
  let proc = M.new_proc src ~name:"s" ~working_set:8.0 () in
  ignore
    (M.spawn src proc ~name:"send" (fun () ->
         Net.send net l1 ~bytes:10 ignore;
         Net.send net l2 ~bytes:20 ignore;
         Net.send net l2 ~bytes:30 ignore));
  run2 src dst;
  let t = Net.totals net in
  Alcotest.(check int) "total msgs" 3 t.Net.s_msgs;
  Alcotest.(check int) "total bytes" 60 t.Net.s_bytes

let test_telemetry_counters () =
  (* Interned counters: global and per-link, visible on the sink; and the
     delivery schedule is identical with and without the sink. *)
  let run telemetry =
    let src = M.create () and dst = M.create () in
    let net = Net.create ?telemetry () in
    let l = Net.link net ~params:(p ()) ~src ~dst "lk" in
    let arrivals = ref [] in
    let proc = M.new_proc src ~name:"s" ~working_set:8.0 () in
    ignore
      (M.spawn src proc ~name:"send" (fun () ->
           Net.send net l ~bytes:100 (fun () -> arrivals := M.now dst :: !arrivals);
           Net.send net l ~bytes:200 (fun () -> arrivals := M.now dst :: !arrivals)));
    run2 src dst;
    !arrivals
  in
  let sink = Tel.create () in
  let with_tel = run (Some sink) in
  let without = run None in
  Alcotest.(check bool) "schedule identical" true (with_tel = without);
  let text = Tel.metrics_to_text sink in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "global bytes counter" true (contains "net.bytes_sent");
  Alcotest.(check bool) "global msgs counter" true (contains "net.msgs_sent");
  Alcotest.(check bool) "per-link bytes counter" true (contains "net.lk.bytes_sent");
  Alcotest.(check bool) "rtt hist registered" true
    (Tel.metrics_to_json sink |> fun j ->
     let n = String.length j and m = String.length "net_rtt_us" in
     let rec go i = i + m <= n && (String.sub j i m = "net_rtt_us" || go (i + 1)) in
     go 0)

let test_validation () =
  let src = M.create () and dst = M.create () in
  let net = Net.create () in
  let bad params = fun () -> ignore (Net.link net ~params ~src ~dst "x") in
  Alcotest.check_raises "latency" (Invalid_argument "Net.link: latency_us must be > 0")
    (bad (p ~latency:0.0 ()));
  Alcotest.check_raises "rate" (Invalid_argument "Net.link: bytes_per_us must be > 0")
    (bad (p ~rate:0.0 ()));
  Alcotest.check_raises "loss" (Invalid_argument "Net.link: loss must be in [0, 1)")
    (bad (p ~loss:1.0 ()));
  let l = Net.link net ~params:(p ()) ~src ~dst "ok" in
  Alcotest.check_raises "negative size" (Invalid_argument "Net.send: negative size")
    (fun () -> Net.send net l ~bytes:(-1) ignore)

let test_transmission_us () =
  Alcotest.(check (float 1e-9)) "pure serialization" 8.2
    (Net.transmission_us Net.default_params 1024)

let () =
  Alcotest.run "net"
    [
      ( "model",
        [
          Alcotest.test_case "fifo serialization + latency" `Quick test_fifo_latency;
          Alcotest.test_case "idle link departs immediately" `Quick test_idle_gap;
          Alcotest.test_case "loss: deterministic, in-order" `Quick test_loss_determinism;
          Alcotest.test_case "totals and link order" `Quick test_totals_and_links;
          Alcotest.test_case "default rate from server model" `Quick test_transmission_us;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "telemetry counters" `Quick test_telemetry_counters;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
