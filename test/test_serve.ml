(* Tests for Bunshin_serve: the NXE group pool (conservation, neutrality,
   admission control) plus the workload-layer bugfixes it surfaced
   (Server.make request accounting and argument validation). *)

module Rng = Bunshin_util.Rng
module M = Bunshin_machine.Machine
module Trace = Bunshin_program.Trace
module Program = Bunshin_program.Program
module Server = Bunshin_workloads.Server
module Bench = Bunshin_workloads.Bench
module Faults = Bunshin_faults.Faults
module Nxe = Bunshin_nxe.Nxe
module Serve = Bunshin_serve.Serve

(* ------------------------------------------------------------------ *)
(* Server.make request accounting (the truncating-division bug) *)

(* Each small-file request is exactly 3 syscalls (accept, read, one
   sendfile write), so the generated trace pins the request count. *)
let syscalls_per_request = 3

let server_trace kind requests =
  let b = Server.make kind ~file_kb:1 ~connections:16 ~requests in
  b.Bench.prog.Program.gen_trace (Rng.create 1)

let test_make_nondivisible_requests () =
  (* nginx has 4 workers; 10 requests used to become 4 * (10/4) = 8 —
     the remainder was silently dropped.  The trace (including Spawn
     sub-traces) must carry every request. *)
  let t = server_trace Server.Nginx 10 in
  Alcotest.(check int) "nginx 10 requests -> 30 syscalls" (10 * syscalls_per_request)
    (Trace.syscall_count t);
  let t = server_trace Server.Nginx 3 in
  Alcotest.(check int) "fewer requests than workers" (3 * syscalls_per_request)
    (Trace.syscall_count t);
  let t = server_trace Server.Lighttpd 7 in
  Alcotest.(check int) "single worker unchanged" (7 * syscalls_per_request)
    (Trace.syscall_count t)

let test_make_executed_syscalls () =
  (* The same count must survive execution: two identical variants of the
     non-divisible nginx trace synchronize every generated syscall. *)
  let t = server_trace Server.Nginx 10 in
  let r = Nxe.run_traces ~names:[ "v0"; "v1" ] [ t; t ] in
  Alcotest.(check bool) "finished" true (r.Nxe.outcome = `All_finished);
  Alcotest.(check int) "executed = generated" (10 * syscalls_per_request)
    r.Nxe.synced_syscalls

let test_per_request_us_ceiling () =
  (* The span is set by the busiest worker: ceil(10/4) = 3 requests, not
     10/4 = 2 — using the truncated count inflated per-request time. *)
  let v =
    Server.per_request_us ~kind:Server.Nginx ~file_kb:1 ~requests:10 ~total_time:300.0
  in
  Alcotest.(check (float 1e-9)) "300/3 - 4*8.2" ((300.0 /. 3.0) -. (8.2 *. 4.0)) v

let test_make_validates_arguments () =
  Alcotest.check_raises "connections = 0"
    (Invalid_argument "Server.make: connections must be >= 1") (fun () ->
      ignore (Server.make Server.Lighttpd ~file_kb:1 ~connections:0 ~requests:10));
  Alcotest.check_raises "requests = 0"
    (Invalid_argument "Server.make: requests must be >= 1") (fun () ->
      ignore (Server.make Server.Nginx ~file_kb:1 ~connections:16 ~requests:0))

(* ------------------------------------------------------------------ *)
(* Pool basics *)

let src ?(n = 2) ?(seed = 7) () =
  Serve.jittered ~seed (Serve.server_source ~n Server.Lighttpd ~file_kb:1 ~connections:16)

let tally r =
  Array.fold_left
    (fun (c, rj, f) -> function
      | Serve.Completed _ -> (c + 1, rj, f)
      | Serve.Rejected _ -> (c, rj + 1, f)
      | Serve.Faulted _ -> (c, rj, f + 1))
    (0, 0, 0) r.Serve.sv_outcomes

let test_run_all_completed_under_light_load () =
  let r = Serve.run (src ()) ~offered_rps:50_000.0 ~requests:30 in
  Alcotest.(check int) "requests" 30 r.Serve.sv_requests;
  Alcotest.(check int) "all completed" 30 r.Serve.sv_completed;
  Alcotest.(check int) "none rejected" 0 r.Serve.sv_rejected;
  let c, rj, f = tally r in
  Alcotest.(check (list int)) "outcomes agree with counts"
    [ r.Serve.sv_completed; r.Serve.sv_rejected; r.Serve.sv_faulted ]
    [ c; rj; f ];
  Alcotest.(check bool) "quantiles ordered" true
    (r.Serve.sv_p50 <= r.Serve.sv_p95
    && r.Serve.sv_p95 <= r.Serve.sv_p99
    && r.Serve.sv_p99 <= r.Serve.sv_p999)

let test_run_deterministic () =
  let go () = Serve.run (src ()) ~offered_rps:300_000.0 ~requests:40 in
  let a = go () and b = go () in
  Alcotest.(check (float 0.0)) "p999 bit-identical" a.Serve.sv_p999 b.Serve.sv_p999;
  Alcotest.(check (float 0.0)) "makespan bit-identical" a.Serve.sv_makespan
    b.Serve.sv_makespan;
  Alcotest.(check int) "rejections identical" a.Serve.sv_rejected b.Serve.sv_rejected

let test_run_validates_arguments () =
  let s = src () in
  let bad f = Alcotest.(check bool) "rejected" true (try ignore (f ()); false
    with Invalid_argument _ -> true) in
  bad (fun () -> Serve.run s ~offered_rps:0.0 ~requests:10);
  bad (fun () -> Serve.run s ~offered_rps:1e5 ~requests:0);
  bad (fun () ->
      Serve.run ~config:{ Serve.default_config with queue_capacity = 0 } s
        ~offered_rps:1e5 ~requests:10);
  bad (fun () ->
      Serve.run ~config:{ Serve.default_config with pool_capacity = 0 } s
        ~offered_rps:1e5 ~requests:10)

let test_saturation_rejects_not_collapses () =
  (* Offered load far past the pool's capacity: the bounded queue must
     convert overload into rejections while the admitted requests keep a
     bounded tail — queue_capacity groups ahead at most, give or take
     batching, not an open-ended backlog. *)
  let config = { Serve.default_config with queue_capacity = 8 } in
  let solo = (Serve.solo_report ~config (src ()) ~req_id:0).Nxe.total_time in
  let r = Serve.run ~config (src ()) ~offered_rps:5e6 ~requests:120 in
  Alcotest.(check bool) "rejections happened" true (r.Serve.sv_rejected > 0);
  Alcotest.(check bool) "still completing" true (r.Serve.sv_completed > 0);
  let bound = 30.0 *. solo in
  Alcotest.(check bool)
    (Printf.sprintf "admitted p99 %.1f bounded by %.1f" r.Serve.sv_p99 bound)
    true
    (r.Serve.sv_p99 <= bound)

let test_groups_spawn_and_retire () =
  let config = { Serve.default_config with retire_idle_us = 50.0 } in
  let r = Serve.run ~config (src ()) ~offered_rps:400_000.0 ~requests:60 in
  Alcotest.(check bool) "pool grew" true (r.Serve.sv_peak_groups > 1);
  Alcotest.(check bool) "peak within capacity" true
    (r.Serve.sv_peak_groups <= Serve.default_config.Serve.pool_capacity);
  Alcotest.(check int) "spawns account retirements + peak survivors" r.Serve.sv_groups_spawned
    (r.Serve.sv_groups_retired + (r.Serve.sv_groups_spawned - r.Serve.sv_groups_retired))

let test_poll_batching_amortizes () =
  let r = Serve.run (src ()) ~offered_rps:1_000_000.0 ~requests:80 in
  Alcotest.(check bool) "events outnumber wakeups" true
    (r.Serve.sv_poll_events > r.Serve.sv_poll_wakeups);
  Alcotest.(check bool) "every request produced events" true
    (r.Serve.sv_poll_events >= r.Serve.sv_requests)

(* ------------------------------------------------------------------ *)
(* Neutrality: pooled reports bit-identical to solo replays *)

let test_neutrality_bit_identical () =
  let config = { Serve.default_config with keep_reports = true } in
  let s = src () in
  let r = Serve.run ~config s ~offered_rps:600_000.0 ~requests:25 in
  Alcotest.(check bool) "kept reports" true (r.Serve.sv_reports <> []);
  List.iter
    (fun (rid, rep) ->
      let solo = Serve.solo_report ~config s ~req_id:rid in
      Alcotest.(check string)
        (Printf.sprintf "request %d pooled = solo" rid)
        (Nxe.report_signature solo) (Nxe.report_signature rep))
    r.Serve.sv_reports

let test_neutrality_under_faults () =
  (* A per-request fault plan is injected identically into the pooled run
     and the solo replay: signatures still match, and faulted requests
     are accounted as Faulted, not Completed. *)
  let watchdog =
    { Nxe.selective with
      fault_policy = { Nxe.default_policy with heartbeat_timeout = 300.0 } }
  in
  let fault_plan rid =
    if rid mod 4 = 2 then Some (Faults.plan ~seed:(100 + rid) ~variants:2 ()) else None
  in
  let config =
    { Serve.default_config with
      keep_reports = true;
      nxe = watchdog;
      fault_plan = Some fault_plan }
  in
  let s = src () in
  let r = Serve.run ~config s ~offered_rps:200_000.0 ~requests:16 in
  let c, rj, f = tally r in
  Alcotest.(check int) "conserved" 16 (c + rj + f);
  List.iter
    (fun (rid, rep) ->
      let solo = Serve.solo_report ~config s ~req_id:rid in
      Alcotest.(check string)
        (Printf.sprintf "request %d pooled = solo under faults" rid)
        (Nxe.report_signature solo) (Nxe.report_signature rep))
    r.Serve.sv_reports

(* ------------------------------------------------------------------ *)
(* Compile-once: precompiled variants shared across the pool *)

let test_ir_source_compiles_once () =
  let s, compiles = Bunshin.Experiments.serve_ir_source ~n:3 () in
  Alcotest.(check int) "n compiles at construction" 3 !compiles;
  let config = { Serve.default_config with keep_reports = true } in
  let r = Serve.run ~config s ~offered_rps:400_000.0 ~requests:30 in
  Alcotest.(check int) "all served" 30 r.Serve.sv_completed;
  Alcotest.(check bool) "several groups shared them" true (r.Serve.sv_peak_groups > 1);
  Alcotest.(check int) "no recompilation during the run" 3 !compiles

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_pool_scenario =
  QCheck.Gen.(
    let* rps = float_range 30_000.0 3_000_000.0 in
    let* pool = 1 -- 6 in
    let* queue = 1 -- 10 in
    let* batch = 1 -- 6 in
    let* requests = 3 -- 40 in
    let* seed = 0 -- 1000 in
    let* faults = bool in
    return (rps, pool, queue, batch, requests, seed, faults))

let scenario_config (_, pool, queue, batch, _, seed, faults) =
  let fault_plan rid =
    if faults && rid mod 5 = 1 then Some (Faults.plan ~seed:(seed + rid) ~variants:2 ())
    else None
  in
  { Serve.default_config with
    pool_capacity = pool;
    queue_capacity = queue;
    batch;
    seed;
    nxe =
      { Nxe.selective with
        fault_policy = { Nxe.default_policy with heartbeat_timeout = 300.0 } };
    fault_plan = Some fault_plan }

let prop_conservation =
  QCheck.Test.make ~name:"serve: every request resolved exactly once" ~count:40
    (QCheck.make gen_pool_scenario)
    (fun ((rps, _, _, _, requests, seed, _) as sc) ->
      let config = scenario_config sc in
      let r = Serve.run ~config (src ~seed ()) ~offered_rps:rps ~requests in
      let c, rj, f = tally r in
      (* [run] itself faults on a double or missing resolution; here we
         re-check the totals from the outcomes array. *)
      Array.length r.Serve.sv_outcomes = requests
      && c + rj + f = requests
      && c = r.Serve.sv_completed
      && rj = r.Serve.sv_rejected
      && f = r.Serve.sv_faulted)

let prop_neutrality =
  QCheck.Test.make ~name:"serve: pooled reports bit-identical to solo" ~count:15
    (QCheck.make gen_pool_scenario)
    (fun ((rps, _, _, _, requests, seed, _) as sc) ->
      let requests = min requests 12 in
      let config = { (scenario_config sc) with Serve.keep_reports = true } in
      let s = src ~seed () in
      let r = Serve.run ~config s ~offered_rps:rps ~requests in
      List.for_all
        (fun (rid, rep) ->
          Nxe.report_signature rep
          = Nxe.report_signature (Serve.solo_report ~config s ~req_id:rid))
        r.Serve.sv_reports)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run ~and_exit:false "bunshin_serve"
    [
      ( "server_make",
        [
          Alcotest.test_case "non-divisible requests" `Quick test_make_nondivisible_requests;
          Alcotest.test_case "executed syscalls" `Quick test_make_executed_syscalls;
          Alcotest.test_case "per_request_us ceiling" `Quick test_per_request_us_ceiling;
          Alcotest.test_case "argument validation" `Quick test_make_validates_arguments;
        ] );
      ( "pool",
        [
          Alcotest.test_case "light load completes" `Quick test_run_all_completed_under_light_load;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "argument validation" `Quick test_run_validates_arguments;
          Alcotest.test_case "saturation rejects" `Quick test_saturation_rejects_not_collapses;
          Alcotest.test_case "spawn and retire" `Quick test_groups_spawn_and_retire;
          Alcotest.test_case "poll batching" `Quick test_poll_batching_amortizes;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "bit-identical" `Quick test_neutrality_bit_identical;
          Alcotest.test_case "under faults" `Quick test_neutrality_under_faults;
          Alcotest.test_case "compile once" `Quick test_ir_source_compiles_once;
        ] );
      ("properties", qcheck [ prop_conservation; prop_neutrality ]);
    ]
