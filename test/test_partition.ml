(* Tests for Bunshin_partition: LPT, Karmarkar-Karp, exact, local search. *)

module P = Bunshin_partition.Partition

let items_of weights = List.mapi (fun i w -> { P.label = Printf.sprintf "u%d" i; weight = w }) weights

let test_lpt_basic () =
  let r = P.lpt 2 (items_of [ 8.0; 7.0; 6.0; 5.0; 4.0 ]) in
  (* LPT: 8+5+4=17 vs 7+6=13... actually 8,7 -> bins; 6->13; 5->13+... *)
  Alcotest.(check bool) "valid" true (P.valid (items_of [ 8.0; 7.0; 6.0; 5.0; 4.0 ]) r);
  Alcotest.(check (float 1e-9)) "total preserved" 30.0 (r.P.loads.(0) +. r.P.loads.(1));
  Alcotest.(check bool) "reasonable makespan" true (P.makespan r <= 17.0)

let test_round_robin () =
  let items = items_of [ 1.0; 2.0; 3.0; 4.0 ] in
  let r = P.round_robin 2 items in
  Alcotest.(check bool) "valid" true (P.valid items r);
  Alcotest.(check (float 1e-9)) "bin0 = 1+3" 4.0 r.P.loads.(0);
  Alcotest.(check (float 1e-9)) "bin1 = 2+4" 6.0 r.P.loads.(1)

let test_kk_perfect_split () =
  (* 4,5,6,7,8 into 2: optimal makespan 15.  Pure differencing lands on 16
     here (it is a heuristic); the production `best` closes the gap with a
     swap in its local-search pass. *)
  let items = items_of [ 4.0; 5.0; 6.0; 7.0; 8.0 ] in
  let kk = P.karmarkar_karp 2 items in
  Alcotest.(check bool) "valid" true (P.valid items kk);
  Alcotest.(check bool) "kk near-optimal" true (P.makespan kk <= 16.0 +. 1e-9);
  let b = P.best 2 items in
  Alcotest.(check bool) "best valid" true (P.valid items b);
  Alcotest.(check (float 1e-9)) "best optimal" 15.0 (P.makespan b)

let test_kk_beats_lpt_on_classic_instance () =
  (* Classic example where greedy is suboptimal: {8,7,6,5,4} 2-way is fine,
     use {5,5,4,4,3,3,3,3} 2-way: total 30, optimal 15. *)
  let items = items_of [ 5.0; 5.0; 4.0; 4.0; 3.0; 3.0; 3.0; 3.0 ] in
  let kk = P.karmarkar_karp 2 items in
  Alcotest.(check (float 1e-9)) "kk optimal" 15.0 (P.makespan kk)

let test_exact_small () =
  let items = items_of [ 3.0; 3.0; 2.0; 2.0; 2.0 ] in
  let r = P.exact 2 items in
  Alcotest.(check bool) "valid" true (P.valid items r);
  Alcotest.(check (float 1e-9)) "optimal 6" 6.0 (P.makespan r)

let test_exact_three_way () =
  let items = items_of [ 9.0; 8.0; 7.0; 6.0; 5.0; 4.0; 3.0 ] in
  let r = P.exact 3 items in
  Alcotest.(check bool) "valid" true (P.valid items r);
  (* total 42, perfect would be 14: 9+5, 8+6, 7+4+3. *)
  Alcotest.(check (float 1e-9)) "optimal 14" 14.0 (P.makespan r)

let test_exact_guard () =
  Alcotest.(check bool) "too many items rejected" true
    (try
       ignore (P.exact 2 (items_of (List.init 25 (fun i -> float_of_int i))));
       false
     with Invalid_argument _ -> true)

let test_best_never_worse_than_lpt () =
  let items = items_of [ 10.0; 9.0; 8.0; 7.0; 6.0; 5.0; 4.0; 3.0; 2.0; 1.0 ] in
  let b = P.best 3 items in
  let g = P.lpt 3 items in
  Alcotest.(check bool) "best <= lpt" true (P.makespan b <= P.makespan g +. 1e-9)

let test_imbalance_zero_when_even () =
  let items = items_of [ 5.0; 5.0; 5.0; 5.0 ] in
  let r = P.best 2 items in
  Alcotest.(check (float 1e-9)) "balanced" 0.0 (P.imbalance r)

(* Regression: [imbalance] is the MEAN absolute deviation of bin loads.
   It used to return the raw deviation sum, which grows with the bin
   count even for equally-shaped splits and made values incomparable
   across bin counts (the bench table leaned on that comparison). *)
let test_imbalance_is_mean_absolute_deviation () =
  let mk loads =
    {
      P.bins = Array.of_list (List.map (fun w -> [ { P.label = "u"; weight = w } ]) loads);
      P.loads = Array.of_list loads;
    }
  in
  (* loads 1,3,8: avg 4, |dev| sum = 3 + 1 + 4 = 8, normalized by n = 3. *)
  Alcotest.(check (float 1e-9)) "mad/n" (8.0 /. 3.0) (P.imbalance (mk [ 1.0; 3.0; 8.0 ]));
  (* Same skew shape replicated across twice the bins: identical value.
     The old raw sum gave 10 vs 20 here. *)
  Alcotest.(check (float 1e-9))
    "comparable across bin counts"
    (P.imbalance (mk [ 0.0; 10.0 ]))
    (P.imbalance (mk [ 0.0; 10.0; 0.0; 10.0 ]));
  Alcotest.(check (float 1e-9)) "no bins" 0.0 (P.imbalance (mk []))

let test_empty_items () =
  let r = P.best 3 [] in
  Alcotest.(check bool) "valid" true (P.valid [] r);
  Alcotest.(check (float 1e-9)) "zero" 0.0 (P.makespan r)

let test_single_bin () =
  let items = items_of [ 1.0; 2.0; 3.0 ] in
  let r = P.best 1 items in
  Alcotest.(check (float 1e-9)) "everything in one" 6.0 (P.makespan r)

let test_more_bins_than_items () =
  let items = items_of [ 2.0; 1.0 ] in
  let r = P.best 4 items in
  Alcotest.(check bool) "valid" true (P.valid items r);
  Alcotest.(check (float 1e-9)) "makespan = max item" 2.0 (P.makespan r)

let test_hot_function_outlier () =
  (* The hmmer/lbm case: one unit dominates, distribution cannot help —
     makespan stays ~= the hot weight (§5.4 outliers). *)
  let items = items_of [ 95.0; 1.0; 1.0; 1.0; 1.0; 1.0 ] in
  let r = P.best 3 items in
  Alcotest.(check (float 1e-9)) "hot unit bounds makespan" 95.0 (P.makespan r)

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_weights = QCheck.(list_of_size Gen.(1 -- 30) (float_range 0.1 100.0))

let prop_valid algo_name algo =
  QCheck.Test.make ~name:(algo_name ^ ": partition is a partition") ~count:200
    QCheck.(pair (int_range 1 6) gen_weights)
    (fun (n, ws) ->
      let items = items_of ws in
      P.valid items (algo n items))

let prop_makespan_lower_bound algo_name algo =
  QCheck.Test.make ~name:(algo_name ^ ": makespan >= total/n and >= max") ~count:200
    QCheck.(pair (int_range 1 6) gen_weights)
    (fun (n, ws) ->
      let items = items_of ws in
      let r = algo n items in
      let total = List.fold_left ( +. ) 0.0 ws in
      let mx = List.fold_left Float.max 0.0 ws in
      P.makespan r +. 1e-6 >= total /. float_of_int n && P.makespan r +. 1e-6 >= mx)

let prop_kk_le_lpt_often =
  (* Guaranteed by construction: best picks the better of polished-KK and
     LPT.  (Round-robin can get lucky on adversarial multisets, so it is
     not a valid upper bound.) *)
  QCheck.Test.make ~name:"best: never worse than lpt" ~count:200
    QCheck.(pair (int_range 2 4) gen_weights)
    (fun (n, ws) ->
      let items = items_of ws in
      P.makespan (P.best n items) <= P.makespan (P.lpt n items) +. 1e-6)

let prop_best_matches_exact_small =
  QCheck.Test.make ~name:"best: within 15% of exact on small instances" ~count:60
    QCheck.(pair (int_range 2 3) (list_of_size Gen.(2 -- 10) (float_range 1.0 50.0)))
    (fun (n, ws) ->
      let items = items_of ws in
      let b = P.makespan (P.best n items) in
      let e = P.makespan (P.exact n items) in
      b <= (e *. 1.15) +. 1e-6)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "bunshin_partition"
    [
      ( "algorithms",
        [
          Alcotest.test_case "lpt basic" `Quick test_lpt_basic;
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "kk perfect split" `Quick test_kk_perfect_split;
          Alcotest.test_case "kk classic instance" `Quick test_kk_beats_lpt_on_classic_instance;
          Alcotest.test_case "exact small" `Quick test_exact_small;
          Alcotest.test_case "exact 3-way" `Quick test_exact_three_way;
          Alcotest.test_case "exact guard" `Quick test_exact_guard;
          Alcotest.test_case "best <= lpt" `Quick test_best_never_worse_than_lpt;
          Alcotest.test_case "imbalance zero" `Quick test_imbalance_zero_when_even;
          Alcotest.test_case "imbalance is MAD" `Quick test_imbalance_is_mean_absolute_deviation;
          Alcotest.test_case "empty items" `Quick test_empty_items;
          Alcotest.test_case "single bin" `Quick test_single_bin;
          Alcotest.test_case "more bins than items" `Quick test_more_bins_than_items;
          Alcotest.test_case "hot-function outlier" `Quick test_hot_function_outlier;
        ] );
      ( "properties",
        qcheck
          [
            prop_valid "lpt" P.lpt;
            prop_valid "kk" P.karmarkar_karp;
            prop_valid "best" P.best;
            prop_valid "round_robin" P.round_robin;
            prop_makespan_lower_bound "lpt" P.lpt;
            prop_makespan_lower_bound "kk" P.karmarkar_karp;
            prop_makespan_lower_bound "best" P.best;
            prop_kk_le_lpt_often;
            prop_best_matches_exact_small;
          ] );
    ]
