(* Tests for Bunshin_ir: builder, verifier, CFG, printer, interpreter. *)

open Bunshin_ir
module B = Builder

let check_outcome msg expected actual =
  let pp = function
    | Interp.Finished v ->
      "Finished " ^ Option.fold ~none:"None" ~some:Int64.to_string v
    | Interp.Detected d -> "Detected " ^ d.d_handler ^ " in " ^ d.d_func
    | Interp.Crashed _ -> "Crashed"
    | Interp.Fuel_exhausted -> "Fuel_exhausted"
  in
  Alcotest.(check string) msg (pp expected) (pp actual)

let run ?config m ?(args = []) () = Interp.run ?config m ~entry:"main" ~args

(* ------------------------------------------------------------------ *)
(* Program constructors used across tests *)

(* main() { return a + b; } *)
let prog_add a b =
  let b' = B.create "add" in
  B.start_func b' ~name:"main" ~params:[];
  let s = B.add b' (B.cst a) (B.cst b) in
  B.ret b' (Some s);
  B.finish b'

(* main(n) { if n > 0 then print 1 else print 2; return 0 } *)
let prog_branch () =
  let b = B.create "branch" in
  B.start_func b ~name:"main" ~params:[ "n" ];
  let c = B.cmp b Ast.Sgt (Ast.Reg "n") (B.cst 0) in
  B.cond_br b c "pos" "neg";
  B.start_block b "pos";
  B.call_void b "print" [ B.cst 1 ];
  B.ret b (Some (B.cst 0));
  B.start_block b "neg";
  B.call_void b "print" [ B.cst 2 ];
  B.ret b (Some (B.cst 0));
  B.finish b

(* main() { p = malloc(4); p[idx] = 7; return p[idx] } *)
let prog_heap_rw idx =
  let b = B.create "heap" in
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "malloc" [ B.cst 4 ] in
  let q = B.gep b p (B.cst idx) in
  B.store b (B.cst 7) q;
  let v = B.load b q in
  B.ret b (Some v);
  B.finish b

(* main() { p = malloc(2); free(p); <maybe free again / use p> } *)
let prog_uaf ~double_free =
  let b = B.create "uaf" in
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "malloc" [ B.cst 2 ] in
  B.store b (B.cst 5) p;
  B.call_void b "free" [ p ];
  if double_free then B.call_void b "free" [ p ];
  let v = B.load b p in
  B.ret b (Some v);
  B.finish b

(* Loop via phi: sum 0..n-1 *)
let prog_loop_sum () =
  let b = B.create "loop" in
  B.start_func b ~name:"main" ~params:[ "n" ];
  B.br b "head";
  B.start_block b "head";
  let i = B.phi b [ ("entry", B.cst 0); ("body", Ast.Reg "i.next") ] in
  let acc = B.phi b [ ("entry", B.cst 0); ("body", Ast.Reg "acc.next") ] in
  let c = B.cmp b Ast.Slt i (Ast.Reg "n") in
  B.cond_br b c "body" "exit";
  B.start_block b "body";
  let acc' = B.add b acc i in
  let i' = B.add b i (B.cst 1) in
  (* Rebind the phi sources under fixed names. *)
  (match (acc', i') with
   | Ast.Reg ra, Ast.Reg ri ->
     let blk =
       match Ast.find_block (List.hd (B.finish b).Ast.m_funcs) "body" with
       | Some blk -> blk
       | None -> assert false
     in
     ignore blk;
     ignore (ra, ri)
   | _ -> ());
  B.finish b

(* ------------------------------------------------------------------ *)
(* Builder & printer *)

let test_builder_basic () =
  let m = prog_add 2 3 in
  Alcotest.(check int) "one function" 1 (List.length m.Ast.m_funcs);
  let f = List.hd m.Ast.m_funcs in
  Alcotest.(check string) "name" "main" f.Ast.f_name;
  Alcotest.(check int) "one block" 1 (List.length f.Ast.f_blocks)

let test_builder_duplicate_func () =
  let b = B.create "dup" in
  B.start_func b ~name:"f" ~params:[];
  B.ret b None;
  Alcotest.check_raises "dup func" (Invalid_argument "Builder.start_func: duplicate function f")
    (fun () -> B.start_func b ~name:"f" ~params:[])

let test_builder_duplicate_label () =
  let b = B.create "dup" in
  B.start_func b ~name:"f" ~params:[];
  Alcotest.check_raises "dup label" (Invalid_argument "Builder.start_block: duplicate label entry")
    (fun () -> B.start_block b "entry")

let test_printer_smoke () =
  let m = prog_branch () in
  let s = Printer.string_of_modul m in
  let contains needle =
    let nh = String.length s and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has define" true (contains "define @main(%n)");
  Alcotest.(check bool) "has condbr" true (contains "condbr");
  Alcotest.(check bool) "has call" true (contains "call @print(1)")

(* ------------------------------------------------------------------ *)
(* Verifier *)

let test_verify_ok () =
  Alcotest.(check bool) "valid" true (Result.is_ok (Verify.check (prog_branch ())))

let test_verify_undefined_register () =
  let b = B.create "bad" in
  B.start_func b ~name:"main" ~params:[];
  let s = B.add b (Ast.Reg "ghost") (B.cst 1) in
  B.ret b (Some s);
  let m = B.finish b in
  match Verify.check m with
  | Ok () -> Alcotest.fail "expected verifier error"
  | Error report ->
    Alcotest.(check bool) "mentions ghost" true
      (String.length report > 0
      &&
      let rec go i =
        i + 5 <= String.length report && (String.sub report i 5 = "ghost" || go (i + 1))
      in
      go 0)

let test_verify_unknown_callee () =
  let b = B.create "bad" in
  B.start_func b ~name:"main" ~params:[];
  B.call_void b "no_such_fn" [];
  B.ret b None;
  Alcotest.(check bool) "invalid" true (Result.is_error (Verify.check (B.finish b)))

let test_verify_unknown_branch_target () =
  let b = B.create "bad" in
  B.start_func b ~name:"main" ~params:[];
  B.br b "nowhere";
  Alcotest.(check bool) "invalid" true (Result.is_error (Verify.check (B.finish b)))

let test_verify_duplicate_register () =
  let m = prog_add 1 2 in
  let f = List.hd m.Ast.m_funcs in
  let entry = Ast.entry_block f in
  entry.Ast.b_instrs <- entry.Ast.b_instrs @ entry.Ast.b_instrs;
  Alcotest.(check bool) "invalid" true (Result.is_error (Verify.check m))

let test_verify_intrinsics_allowed () =
  let b = B.create "ok" in
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "malloc" [ B.cst 1 ] in
  let ok = B.call b Runtime_api.bounds_ok [ p ] in
  ignore ok;
  B.call_void b "sys_write" [ B.cst 1; B.cst 0 ];
  B.ret b None;
  Alcotest.(check bool) "valid" true (Result.is_ok (Verify.check (B.finish b)))

(* ------------------------------------------------------------------ *)
(* CFG *)

let test_cfg_succ_pred () =
  let m = prog_branch () in
  let f = List.hd m.Ast.m_funcs in
  let cfg = Cfg.of_func f in
  Alcotest.(check (list string)) "entry succs" [ "pos"; "neg" ] (Cfg.successors cfg "entry");
  Alcotest.(check (list string)) "pos preds" [ "entry" ] (Cfg.predecessors cfg "pos");
  Alcotest.(check bool) "pos is branch target" true (Cfg.is_branch_target cfg "pos");
  Alcotest.(check bool) "entry not branch target" false (Cfg.is_branch_target cfg "entry")

let test_cfg_reachability () =
  let b = B.create "dead" in
  B.start_func b ~name:"main" ~params:[];
  B.ret b None;
  B.start_block b "orphan";
  B.ret b None;
  let m = B.finish b in
  let cfg = Cfg.of_func (List.hd m.Ast.m_funcs) in
  Alcotest.(check (list string)) "reachable" [ "entry" ] (Cfg.reachable cfg);
  Alcotest.(check (list string)) "unreachable" [ "orphan" ] (Cfg.unreachable_blocks cfg)

(* ------------------------------------------------------------------ *)
(* Interpreter: plain execution *)

let test_interp_add () =
  let r = run (prog_add 2 3) () in
  check_outcome "2+3" (Interp.Finished (Some 5L)) r.Interp.outcome

let test_interp_branch_events () =
  let m = prog_branch () in
  let r1 = Interp.run m ~entry:"main" ~args:[ 5L ] in
  let r2 = Interp.run m ~entry:"main" ~args:[ -5L ] in
  Alcotest.(check bool) "pos output" true (r1.Interp.events = [ Interp.Output 1L ]);
  Alcotest.(check bool) "neg output" true (r2.Interp.events = [ Interp.Output 2L ]);
  Alcotest.(check bool) "diverge" false (Interp.events_equal r1 r2)

let test_interp_heap_in_bounds () =
  let r = run (prog_heap_rw 2) () in
  check_outcome "in-bounds rw" (Interp.Finished (Some 7L)) r.Interp.outcome;
  Alcotest.(check int) "no hazards" 0 (List.length r.Interp.hazards)

let test_interp_heap_oob_is_silent_corruption () =
  (* Writing one past the end lands in the redzone: silent, recorded. *)
  let r = run (prog_heap_rw 4) () in
  check_outcome "completes" (Interp.Finished (Some 7L)) r.Interp.outcome;
  Alcotest.(check bool) "oob write recorded" true
    (List.exists (function Interp.Oob_write _ -> true | _ -> false) r.Interp.hazards)

let test_interp_heap_wild_crashes () =
  (* Far out-of-bounds hits unmapped memory: SIGSEGV-like crash. *)
  let r = run (prog_heap_rw 1000) () in
  Alcotest.(check bool) "crashed" true
    (match r.Interp.outcome with Interp.Crashed (Interp.Wild_pointer _) -> true | _ -> false)

let test_interp_heap_overflow_corrupts_neighbour () =
  (* Two allocations; overflow of the first (past its 1-slot redzone)
     overwrites the second: classic adjacent-object corruption. *)
  let b = B.create "ovf" in
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "malloc" [ B.cst 2 ] in
  let q = B.call b "malloc" [ B.cst 2 ] in
  B.store b (B.cst 11) q;
  (* p[3] aliases q[0] with redzone 1: 2 slots + 1 redzone. *)
  let evil = B.gep b p (B.cst 3) in
  B.store b (B.cst 99) evil;
  let v = B.load b q in
  B.ret b (Some v);
  let r = run (B.finish b) () in
  check_outcome "neighbour corrupted" (Interp.Finished (Some 99L)) r.Interp.outcome

let test_interp_uaf () =
  let r = run (prog_uaf ~double_free:false) () in
  check_outcome "stale read" (Interp.Finished (Some 5L)) r.Interp.outcome;
  Alcotest.(check bool) "uaf recorded" true
    (List.exists (function Interp.Uaf_read _ -> true | _ -> false) r.Interp.hazards)

let test_interp_double_free () =
  let r = run (prog_uaf ~double_free:true) () in
  Alcotest.(check bool) "double free recorded" true
    (List.exists (function Interp.Double_free _ -> true | _ -> false) r.Interp.hazards)

let test_interp_uninit_read () =
  let b = B.create "uninit" in
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "malloc" [ B.cst 1 ] in
  let v = B.load b p in
  B.ret b (Some v);
  let cfg = { Interp.default_config with undef_as = 42L } in
  let r = run ~config:cfg (B.finish b) () in
  check_outcome "undef value surfaces" (Interp.Finished (Some 42L)) r.Interp.outcome;
  Alcotest.(check bool) "uninit recorded" true
    (List.exists (function Interp.Uninit_read _ -> true | _ -> false) r.Interp.hazards)

let test_interp_div_by_zero () =
  let b = B.create "div0" in
  B.start_func b ~name:"main" ~params:[ "n" ];
  let v = B.sdiv b (B.cst 10) (Ast.Reg "n") in
  B.ret b (Some v);
  let m = B.finish b in
  let ok = Interp.run m ~entry:"main" ~args:[ 2L ] in
  check_outcome "10/2" (Interp.Finished (Some 5L)) ok.Interp.outcome;
  let bad = Interp.run m ~entry:"main" ~args:[ 0L ] in
  Alcotest.(check bool) "sigfpe" true
    (match bad.Interp.outcome with Interp.Crashed Interp.Div_by_zero -> true | _ -> false)

let test_interp_null_deref () =
  let b = B.create "null" in
  B.start_func b ~name:"main" ~params:[];
  let v = B.load b Ast.Null in
  B.ret b (Some v);
  let r = run (B.finish b) () in
  Alcotest.(check bool) "sigsegv" true
    (match r.Interp.outcome with Interp.Crashed Interp.Null_deref -> true | _ -> false)

let test_interp_globals () =
  let b = B.create "glob" in
  B.add_global b ~name:"counter" ~size:1 ~init:[| 10L |] ();
  B.start_func b ~name:"main" ~params:[];
  let v = B.load b (Ast.Global "counter") in
  let v' = B.add b v (B.cst 1) in
  B.store b v' (Ast.Global "counter");
  let v'' = B.load b (Ast.Global "counter") in
  B.ret b (Some v'');
  let r = run (B.finish b) () in
  check_outcome "global increment" (Interp.Finished (Some 11L)) r.Interp.outcome

let test_interp_function_call () =
  let b = B.create "call" in
  B.start_func b ~name:"double" ~params:[ "x" ];
  let v = B.mul b (Ast.Reg "x") (B.cst 2) in
  B.ret b (Some v);
  B.start_func b ~name:"main" ~params:[];
  let v = B.call b "double" [ B.cst 21 ] in
  B.ret b (Some v);
  let r = run (B.finish b) () in
  check_outcome "called" (Interp.Finished (Some 42L)) r.Interp.outcome

let test_interp_recursion () =
  (* fact(n) = n <= 1 ? 1 : n * fact(n-1) *)
  let b = B.create "fact" in
  B.start_func b ~name:"fact" ~params:[ "n" ];
  let c = B.cmp b Ast.Sle (Ast.Reg "n") (B.cst 1) in
  B.cond_br b c "base" "rec";
  B.start_block b "base";
  B.ret b (Some (B.cst 1));
  B.start_block b "rec";
  let n1 = B.sub b (Ast.Reg "n") (B.cst 1) in
  let f = B.call b "fact" [ n1 ] in
  let v = B.mul b (Ast.Reg "n") f in
  B.ret b (Some v);
  B.start_func b ~name:"main" ~params:[];
  let v = B.call b "fact" [ B.cst 10 ] in
  B.ret b (Some v);
  let r = run (B.finish b) () in
  check_outcome "10!" (Interp.Finished (Some 3628800L)) r.Interp.outcome

let test_interp_infinite_recursion_stack_overflow () =
  let b = B.create "inf" in
  B.start_func b ~name:"spin" ~params:[];
  let v = B.call b "spin" [] in
  B.ret b (Some v);
  B.start_func b ~name:"main" ~params:[];
  let v = B.call b "spin" [] in
  B.ret b (Some v);
  let r = run (B.finish b) () in
  Alcotest.(check bool) "stack overflow" true
    (match r.Interp.outcome with
     | Interp.Crashed Interp.Stack_overflow_sim | Interp.Fuel_exhausted -> true
     | _ -> false)

let test_interp_fuel () =
  let b = B.create "loop" in
  B.start_func b ~name:"main" ~params:[];
  B.br b "spin";
  B.start_block b "spin";
  B.br b "spin";
  let cfg = { Interp.default_config with fuel = 1000 } in
  let r = run ~config:cfg (B.finish b) () in
  check_outcome "fuel" Interp.Fuel_exhausted r.Interp.outcome

let test_interp_phi_loop () =
  (* Sum 0..4 with explicit phi registers. *)
  let b = B.create "sum" in
  B.start_func b ~name:"main" ~params:[ "n" ];
  B.br b "head";
  B.start_block b "head";
  ignore (B.phi b [ ("entry", B.cst 0); ("body", Ast.Reg "i2") ]);
  ignore (B.phi b [ ("entry", B.cst 0); ("body", Ast.Reg "acc2") ]);
  (* Rename the phis to stable names by rewriting the block directly. *)
  let m = B.finish b in
  let f = List.hd m.Ast.m_funcs in
  let head = Option.get (Ast.find_block f "head") in
  head.Ast.b_instrs <-
    [ Ast.Phi ("i", [ ("entry", Ast.Int 0L); ("body", Ast.Reg "i2") ]);
      Ast.Phi ("acc", [ ("entry", Ast.Int 0L); ("body", Ast.Reg "acc2") ]);
      Ast.Cmp ("c", Ast.Slt, Ast.Reg "i", Ast.Reg "n") ];
  head.Ast.b_term <- Ast.CondBr (Ast.Reg "c", "body", "exit");
  f.Ast.f_blocks <-
    f.Ast.f_blocks
    @ [ { Ast.b_label = "body";
          b_instrs =
            [ Ast.Bin ("acc2", Ast.Add, Ast.Reg "acc", Ast.Reg "i");
              Ast.Bin ("i2", Ast.Add, Ast.Reg "i", Ast.Int 1L) ];
          b_term = Ast.Br "head" };
        { Ast.b_label = "exit"; b_instrs = []; b_term = Ast.Ret (Some (Ast.Reg "acc")) } ];
  Verify.check_exn m;
  let r = Interp.run m ~entry:"main" ~args:[ 5L ] in
  check_outcome "sum 0..4" (Interp.Finished (Some 10L)) r.Interp.outcome

let test_interp_indirect_call () =
  let b = B.create "ind" in
  B.start_func b ~name:"target" ~params:[];
  B.call_void b "print" [ B.cst 77 ];
  B.ret b (Some (B.cst 1));
  B.start_func b ~name:"main" ~params:[];
  (* Store the function pointer in memory, load it back, call it. *)
  let slot = B.alloca b 1 in
  B.store b (Ast.Global "target") slot;
  let fp = B.load b slot in
  let v = B.call_ind b fp [] in
  B.ret b (Some v);
  let r = run (B.finish b) () in
  check_outcome "indirect" (Interp.Finished (Some 1L)) r.Interp.outcome;
  Alcotest.(check bool) "side effect ran" true (r.Interp.events = [ Interp.Output 77L ])

let test_interp_hijacked_indirect_call () =
  (* Overflow corrupts a function pointer; the indirect call then jumps to
     the attacker's chosen function: the control-flow-hijack primitive the
     attack models build on. *)
  let b = B.create "hijack" in
  B.start_func b ~name:"benign" ~params:[];
  B.call_void b "print" [ B.cst 1 ];
  B.ret b None;
  B.start_func b ~name:"evil" ~params:[];
  B.call_void b "print" [ B.cst 666 ];
  B.ret b None;
  B.start_func b ~name:"main" ~params:[];
  let buf = B.alloca b 2 in
  let fpslot = B.alloca b 1 in
  B.store b (Ast.Global "benign") fpslot;
  (* buf[3] lands on fpslot[0] (2 slots + 1-slot redzone): the overflow
     silently replaces the function pointer — no hazard is recorded because
     the raw write targets a live neighbouring allocation, exactly like
     unchecked native code. *)
  let p = B.gep b buf (B.cst 3) in
  B.store b (Ast.Global "evil") p;
  let fp = B.load b fpslot in
  B.call_ind b fp [] |> ignore;
  B.ret b None;
  let r = run (B.finish b) () in
  Alcotest.(check bool) "evil ran" true (List.mem (Interp.Output 666L) r.Interp.events);
  Alcotest.(check bool) "benign skipped" false (List.mem (Interp.Output 1L) r.Interp.events);
  (* A bounds check on the same address would have caught it: the address is
     outside [buf]'s redzone-delimited range only from ASan's perspective,
     which instrumentation (not raw execution) enforces. *)
  Alcotest.(check int) "silent" 0 (List.length r.Interp.hazards)

let test_interp_stack_use_after_return () =
  let b = B.create "uar" in
  B.start_func b ~name:"leak" ~params:[];
  let p = B.alloca b 1 in
  B.store b (B.cst 9) p;
  B.ret b (Some p);
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "leak" [] in
  let v = B.load b p in
  B.ret b (Some v);
  let r = run (B.finish b) () in
  Alcotest.(check bool) "uaf-read hazard" true
    (List.exists (function Interp.Uaf_read _ -> true | _ -> false) r.Interp.hazards);
  check_outcome "stale stack value" (Interp.Finished (Some 9L)) r.Interp.outcome

let test_interp_syscall_events () =
  let b = B.create "sys" in
  B.start_func b ~name:"main" ~params:[];
  B.call_void b "sys_open" [ B.cst 1 ];
  B.call_void b "sys_read" [ B.cst 3; B.cst 100 ];
  B.call_void b "sys_write" [ B.cst 1; B.cst 5 ];
  B.ret b None;
  let r = run (B.finish b) () in
  Alcotest.(check int) "three syscalls" 3 (List.length r.Interp.events);
  Alcotest.(check bool) "order preserved" true
    (r.Interp.events
    = [ Interp.Syscall ("sys_open", [ 1L ]);
        Interp.Syscall ("sys_read", [ 3L; 100L ]);
        Interp.Syscall ("sys_write", [ 1L; 5L ]) ])

let test_interp_check_intrinsics () =
  let b = B.create "checks" in
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "malloc" [ B.cst 2 ] in
  let in_bounds = B.call b Runtime_api.bounds_ok [ p ] in
  let oob = B.gep b p (B.cst 2) in
  let out_bounds = B.call b Runtime_api.bounds_ok [ oob ] in
  let sum = B.add b in_bounds (B.mul b out_bounds (B.cst 10)) in
  B.ret b (Some sum);
  let r = run (B.finish b) () in
  (* in-bounds -> 1, oob -> 0: result 1. *)
  check_outcome "bounds_ok results" (Interp.Finished (Some 1L)) r.Interp.outcome

let test_interp_report_handler_detects () =
  let b = B.create "detect" in
  B.start_func b ~name:"main" ~params:[];
  B.call_void b "__asan_report_store" [];
  B.unreachable b;
  let r = run (B.finish b) () in
  Alcotest.(check bool) "detected" true
    (match r.Interp.outcome with
     | Interp.Detected d -> d.Interp.d_handler = "__asan_report_store" && d.Interp.d_func = "main"
     | _ -> false)

let test_interp_overflow_check_intrinsics () =
  let b = B.create "ovfchk" in
  B.start_func b ~name:"main" ~params:[ "x"; "y" ];
  let a_ok = B.call b Runtime_api.add_ok [ Ast.Reg "x"; Ast.Reg "y" ] in
  let m_ok = B.call b Runtime_api.mul_ok [ Ast.Reg "x"; Ast.Reg "y" ] in
  let both = B.add b a_ok (B.mul b m_ok (B.cst 10)) in
  B.ret b (Some both);
  let m = B.finish b in
  let safe = Interp.run m ~entry:"main" ~args:[ 2L; 3L ] in
  check_outcome "no overflow" (Interp.Finished (Some 11L)) safe.Interp.outcome;
  let unsafe = Interp.run m ~entry:"main" ~args:[ Int64.max_int; 2L ] in
  check_outcome "both overflow" (Interp.Finished (Some 0L)) unsafe.Interp.outcome

let test_interp_undef_divergence () =
  (* Two runs of the same uninit-reading program with different undef
     resolutions observe different outputs: the nondeterminism source for
     NXE false-positive handling. *)
  let b = B.create "entropy" in
  B.start_func b ~name:"main" ~params:[];
  let p = B.call b "malloc" [ B.cst 1 ] in
  let v = B.load b p in
  B.call_void b "print" [ v ];
  B.ret b None;
  let m = B.finish b in
  let r1 = Interp.run ~config:{ Interp.default_config with undef_as = 1L } m ~entry:"main" ~args:[] in
  let r2 = Interp.run ~config:{ Interp.default_config with undef_as = 2L } m ~entry:"main" ~args:[] in
  Alcotest.(check bool) "diverged" false (Interp.events_equal r1 r2)

let test_interp_select () =
  let b = B.create "sel" in
  B.start_func b ~name:"main" ~params:[ "c" ];
  let v = B.select b (Ast.Reg "c") (B.cst 10) (B.cst 20) in
  B.ret b (Some v);
  let m = B.finish b in
  check_outcome "true" (Interp.Finished (Some 10L))
    (Interp.run m ~entry:"main" ~args:[ 1L ]).Interp.outcome;
  check_outcome "false" (Interp.Finished (Some 20L))
    (Interp.run m ~entry:"main" ~args:[ 0L ]).Interp.outcome

let test_interp_missing_entry () =
  let m = prog_add 1 1 in
  Alcotest.check_raises "missing entry" (Invalid_argument "Interp.run: no such function nope")
    (fun () -> ignore (Interp.run m ~entry:"nope" ~args:[]))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_add_matches_int64 =
  QCheck.Test.make ~name:"interp: add = Int64.add" ~count:200
    QCheck.(pair int int)
    (fun (a, b) ->
      let m = prog_add a b in
      match (Interp.run m ~entry:"main" ~args:[]).Interp.outcome with
      | Interp.Finished (Some v) -> v = Int64.add (Int64.of_int a) (Int64.of_int b)
      | _ -> false)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interp: identical runs identical events" ~count:50
    QCheck.(int_range (-10) 10)
    (fun n ->
      let m = prog_branch () in
      let r1 = Interp.run m ~entry:"main" ~args:[ Int64.of_int n ] in
      let r2 = Interp.run m ~entry:"main" ~args:[ Int64.of_int n ] in
      Interp.events_equal r1 r2 && r1.Interp.steps = r2.Interp.steps)

let prop_verifier_accepts_builder_output =
  QCheck.Test.make ~name:"verify: builder output is well-formed" ~count:100
    QCheck.(pair (int_range 0 100) (int_range 0 100))
    (fun (a, b) -> Result.is_ok (Verify.check (prog_add a b)))

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  ignore prog_loop_sum;
  Alcotest.run ~and_exit:false "bunshin_ir"
    [
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "duplicate function" `Quick test_builder_duplicate_func;
          Alcotest.test_case "duplicate label" `Quick test_builder_duplicate_label;
        ] );
      ("printer", [ Alcotest.test_case "smoke" `Quick test_printer_smoke ]);
      ( "verify",
        [
          Alcotest.test_case "accepts valid" `Quick test_verify_ok;
          Alcotest.test_case "undefined register" `Quick test_verify_undefined_register;
          Alcotest.test_case "unknown callee" `Quick test_verify_unknown_callee;
          Alcotest.test_case "unknown branch target" `Quick test_verify_unknown_branch_target;
          Alcotest.test_case "duplicate register" `Quick test_verify_duplicate_register;
          Alcotest.test_case "intrinsics allowed" `Quick test_verify_intrinsics_allowed;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "succ/pred" `Quick test_cfg_succ_pred;
          Alcotest.test_case "reachability" `Quick test_cfg_reachability;
        ] );
      ( "interp",
        [
          Alcotest.test_case "add" `Quick test_interp_add;
          Alcotest.test_case "branch events" `Quick test_interp_branch_events;
          Alcotest.test_case "heap in bounds" `Quick test_interp_heap_in_bounds;
          Alcotest.test_case "heap oob silent corruption" `Quick test_interp_heap_oob_is_silent_corruption;
          Alcotest.test_case "heap wild pointer crash" `Quick test_interp_heap_wild_crashes;
          Alcotest.test_case "overflow corrupts neighbour" `Quick test_interp_heap_overflow_corrupts_neighbour;
          Alcotest.test_case "use after free" `Quick test_interp_uaf;
          Alcotest.test_case "double free" `Quick test_interp_double_free;
          Alcotest.test_case "uninit read" `Quick test_interp_uninit_read;
          Alcotest.test_case "div by zero" `Quick test_interp_div_by_zero;
          Alcotest.test_case "null deref" `Quick test_interp_null_deref;
          Alcotest.test_case "globals" `Quick test_interp_globals;
          Alcotest.test_case "function call" `Quick test_interp_function_call;
          Alcotest.test_case "recursion" `Quick test_interp_recursion;
          Alcotest.test_case "infinite recursion" `Quick test_interp_infinite_recursion_stack_overflow;
          Alcotest.test_case "fuel exhaustion" `Quick test_interp_fuel;
          Alcotest.test_case "phi loop" `Quick test_interp_phi_loop;
          Alcotest.test_case "indirect call" `Quick test_interp_indirect_call;
          Alcotest.test_case "hijacked indirect call" `Quick test_interp_hijacked_indirect_call;
          Alcotest.test_case "stack use after return" `Quick test_interp_stack_use_after_return;
          Alcotest.test_case "syscall events" `Quick test_interp_syscall_events;
          Alcotest.test_case "check intrinsics" `Quick test_interp_check_intrinsics;
          Alcotest.test_case "report handler detects" `Quick test_interp_report_handler_detects;
          Alcotest.test_case "overflow check intrinsics" `Quick test_interp_overflow_check_intrinsics;
          Alcotest.test_case "undef divergence" `Quick test_interp_undef_divergence;
          Alcotest.test_case "select" `Quick test_interp_select;
          Alcotest.test_case "missing entry" `Quick test_interp_missing_entry;
        ] );
      ( "properties",
        qcheck
          [
            prop_add_matches_int64;
            prop_interp_deterministic;
            prop_verifier_accepts_builder_output;
          ] );
    ]

(* Appended: dominance analysis and the verifier's SSA rule. *)
let diamond_func () =
  (* entry -> (l / r) -> join *)
  {
    Ast.f_name = "main";
    f_params = [ "c" ];
    f_blocks =
      [
        { Ast.b_label = "entry"; b_instrs = [];
          b_term = Ast.CondBr (Ast.Reg "c", "l", "r") };
        { Ast.b_label = "l"; b_instrs = [ Ast.Bin ("x", Ast.Add, Ast.Int 1L, Ast.Int 2L) ];
          b_term = Ast.Br "join" };
        { Ast.b_label = "r"; b_instrs = [ Ast.Bin ("y", Ast.Add, Ast.Int 3L, Ast.Int 4L) ];
          b_term = Ast.Br "join" };
        { Ast.b_label = "join";
          b_instrs = [ Ast.Phi ("m", [ ("l", Ast.Reg "x"); ("r", Ast.Reg "y") ]) ];
          b_term = Ast.Ret (Some (Ast.Reg "m")) };
      ];
  }

let test_dominance_diamond () =
  let f = diamond_func () in
  let d = Dominance.of_func f in
  Alcotest.(check bool) "entry dom join" true (Dominance.dominates d "entry" "join");
  Alcotest.(check bool) "l not dom join" false (Dominance.dominates d "l" "join");
  Alcotest.(check bool) "reflexive" true (Dominance.dominates d "l" "l");
  Alcotest.(check bool) "idom join = entry" true (Dominance.idom d "join" = Some "entry");
  Alcotest.(check bool) "idom entry = none" true (Dominance.idom d "entry" = None)

let test_dominance_accepts_phi_diamond () =
  let m = { Ast.m_name = "d"; m_globals = []; m_funcs = [ diamond_func () ] } in
  Alcotest.(check bool) "valid" true (Result.is_ok (Verify.check m))

let test_dominance_rejects_cross_branch_use () =
  (* Using %x (defined only on the left arm) in the join block directly —
     the classic non-dominating use that textual checks miss. *)
  let f = diamond_func () in
  let join = Option.get (Ast.find_block f "join") in
  join.Ast.b_instrs <- [ Ast.Bin ("m", Ast.Add, Ast.Reg "x", Ast.Int 1L) ];
  let m = { Ast.m_name = "d"; m_globals = []; m_funcs = [ f ] } in
  Alcotest.(check bool) "rejected" true (Result.is_error (Verify.check m))

let test_dominance_rejects_bad_phi_edge () =
  (* Phi pulling %y along the l edge, where it was never defined. *)
  let f = diamond_func () in
  let join = Option.get (Ast.find_block f "join") in
  join.Ast.b_instrs <- [ Ast.Phi ("m", [ ("l", Ast.Reg "y"); ("r", Ast.Reg "y") ]) ];
  let m = { Ast.m_name = "d"; m_globals = []; m_funcs = [ f ] } in
  Alcotest.(check bool) "rejected" true (Result.is_error (Verify.check m))

let test_dominance_loop_ok () =
  (* A back edge: the phi takes the body's value on the loop edge. *)
  let f_blocks =
    [
      { Ast.b_label = "entry"; b_instrs = []; b_term = Ast.Br "head" };
      { Ast.b_label = "head";
        b_instrs =
          [ Ast.Phi ("i", [ ("entry", Ast.Int 0L); ("body", Ast.Reg "i2") ]);
            Ast.Cmp ("c", Ast.Slt, Ast.Reg "i", Ast.Int 3L) ];
        b_term = Ast.CondBr (Ast.Reg "c", "body", "exit") };
      { Ast.b_label = "body";
        b_instrs = [ Ast.Bin ("i2", Ast.Add, Ast.Reg "i", Ast.Int 1L) ];
        b_term = Ast.Br "head" };
      { Ast.b_label = "exit"; b_instrs = []; b_term = Ast.Ret (Some (Ast.Reg "i")) };
    ]
  in
  let m =
    { Ast.m_name = "loop"; m_globals = [];
      m_funcs = [ { Ast.f_name = "main"; f_params = []; f_blocks } ] }
  in
  Alcotest.(check bool) "valid loop" true (Result.is_ok (Verify.check m))

let () =
  Alcotest.run ~and_exit:false "bunshin_ir_dominance"
    [
      ( "dominance",
        [
          Alcotest.test_case "diamond sets" `Quick test_dominance_diamond;
          Alcotest.test_case "phi diamond accepted" `Quick test_dominance_accepts_phi_diamond;
          Alcotest.test_case "cross-branch use rejected" `Quick test_dominance_rejects_cross_branch_use;
          Alcotest.test_case "bad phi edge rejected" `Quick test_dominance_rejects_bad_phi_edge;
          Alcotest.test_case "loop accepted" `Quick test_dominance_loop_ok;
        ] );
    ]

(* Appended: differential suite — the precompiled fast engine against the
   reference oracle.  The fast path must reproduce the ENTIRE run record
   (outcome, events, timeline, hazards, step count) bit-for-bit, across
   program shapes, sanitizer instrumentation, and layout seeds. *)

module Inst = Bunshin_sanitizer.Instrument
module San = Bunshin_sanitizer.Sanitizer

let runs_identical (a : Interp.run) (b : Interp.run) =
  a.Interp.outcome = b.Interp.outcome
  && a.Interp.events = b.Interp.events
  && a.Interp.timeline = b.Interp.timeline
  && a.Interp.hazards = b.Interp.hazards
  && a.Interp.steps = b.Interp.steps

let diff_seeds = [ 0; 1; 12345 ]

(* The module itself plus every sanitizer that instruments it cleanly,
   alone and all-combined: instrumentation exercises the check-intrinsic
   and report-handler paths of both engines. *)
let sanitizer_variants m =
  let apply label sans =
    match Inst.apply sans m with Ok m' -> Some (label, m') | Error _ -> None
  in
  ("vanilla", m)
  :: List.filter_map
       (fun s -> apply (San.name s) [ s ])
       San.all
  @ Option.to_list (apply "all-combined" San.all)

let assert_differential ?(entry = "main") ?(fuel = Interp.default_config.Interp.fuel)
    name m args_list =
  List.iter
    (fun (variant, m) ->
      let pm = Interp.compile m in
      List.iter
        (fun seed ->
          let config = { Interp.default_config with layout_seed = seed; fuel } in
          List.iter
            (fun args ->
              let fast = Interp.run_compiled ~config pm ~entry ~args in
              let oracle = Interp.run_reference ~config m ~entry ~args in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s seed=%d args=[%s]" name variant seed
                   (String.concat ";" (List.map Int64.to_string args)))
                true
                (runs_identical fast oracle))
            args_list)
        diff_seeds)
    (sanitizer_variants m)

(* ---- corpus ---- *)

let blk label instrs term = { Ast.b_label = label; b_instrs = instrs; b_term = term }
let func name params blocks = { Ast.f_name = name; f_params = params; f_blocks = blocks }
let modul ?(globals = []) name funcs = { Ast.m_name = name; m_globals = globals; m_funcs = funcs }

(* sum 0..n-1 through a phi loop *)
let diff_phi_loop () =
  modul "phi_loop"
    [
      func "main" [ "n" ]
        [
          blk "entry" [] (Ast.Br "head");
          blk "head"
            [
              Ast.Phi ("i", [ ("entry", Ast.Int 0L); ("body", Ast.Reg "i2") ]);
              Ast.Phi ("acc", [ ("entry", Ast.Int 0L); ("body", Ast.Reg "acc2") ]);
              Ast.Cmp ("c", Ast.Slt, Ast.Reg "i", Ast.Reg "n");
            ]
            (Ast.CondBr (Ast.Reg "c", "body", "exit"));
          blk "body"
            [
              Ast.Bin ("acc2", Ast.Add, Ast.Reg "acc", Ast.Reg "i");
              Ast.Bin ("i2", Ast.Add, Ast.Reg "i", Ast.Int 1L);
            ]
            (Ast.Br "head");
          blk "exit" [] (Ast.Ret (Some (Ast.Reg "acc")));
        ];
    ]

(* indirect call through a function-pointer argument *)
let diff_indirect () =
  modul "indirect"
    [
      func "gadget" [] [ blk "entry" [] (Ast.Ret (Some (Ast.Int 7L))) ];
      func "main" [ "fp" ]
        [
          blk "entry"
            [ Ast.CallInd (Some "r", Ast.Reg "fp", []) ]
            (Ast.Ret (Some (Ast.Reg "r")));
        ];
    ]

(* recursion: factorial *)
let diff_fact () =
  modul "fact"
    [
      func "fact" [ "n" ]
        [
          blk "entry"
            [ Ast.Cmp ("c", Ast.Sle, Ast.Reg "n", Ast.Int 1L) ]
            (Ast.CondBr (Ast.Reg "c", "base", "rec"));
          blk "base" [] (Ast.Ret (Some (Ast.Int 1L)));
          blk "rec"
            [
              Ast.Bin ("n1", Ast.Sub, Ast.Reg "n", Ast.Int 1L);
              Ast.Call (Some "r", "fact", [ Ast.Reg "n1" ]);
              Ast.Bin ("p", Ast.Mul, Ast.Reg "n", Ast.Reg "r");
            ]
            (Ast.Ret (Some (Ast.Reg "p")));
        ];
      func "main" [ "n" ]
        [
          blk "entry"
            [ Ast.Call (Some "r", "fact", [ Ast.Reg "n" ]) ]
            (Ast.Ret (Some (Ast.Reg "r")));
        ];
    ]

(* globals with partial init, pointer arithmetic, stores *)
let diff_globals () =
  modul "globals"
    ~globals:
      [
        { Ast.g_name = "tab"; g_size = 4; g_init = [| 10L; 20L |] };
        { Ast.g_name = "flag"; g_size = 1; g_init = [| 1L |] };
      ]
    [
      func "main" []
        [
          blk "entry"
            [
              Ast.Gep ("p", Ast.Global "tab", Ast.Int 1L);
              Ast.Load ("v", Ast.Reg "p");
              Ast.Call (None, "print", [ Ast.Reg "v" ]);
              Ast.Store (Ast.Int 33L, Ast.Global "flag");
              Ast.Load ("w", Ast.Global "flag");
              Ast.Bin ("s", Ast.Add, Ast.Reg "v", Ast.Reg "w");
            ]
            (Ast.Ret (Some (Ast.Reg "s")));
        ];
    ]

(* uninitialised read feeding output: exercises undef_as *)
let diff_uninit () =
  modul "uninit"
    [
      func "main" []
        [
          blk "entry"
            [
              Ast.Call (Some "p", "malloc", [ Ast.Int 2L ]);
              Ast.Load ("v", Ast.Reg "p");
              Ast.Call (None, "print", [ Ast.Reg "v" ]);
            ]
            (Ast.Ret (Some (Ast.Reg "v")));
        ];
    ]

(* syscalls, print, and every check intrinsic in one straight line *)
let diff_intrinsics () =
  modul "intrinsics"
    [
      func "main" [ "n" ]
        [
          blk "entry"
            [
              Ast.Call (Some "p", "malloc", [ Ast.Int 4L ]);
              Ast.Call (None, "sys_write", [ Ast.Int 1L; Ast.Reg "n" ]);
              Ast.Call (Some "b1", "__bunshin_bounds_ok", [ Ast.Reg "p" ]);
              Ast.Call (Some "b2", "__bunshin_in_alloc", [ Ast.Reg "p" ]);
              Ast.Call (Some "b3", "__bunshin_not_freed", [ Ast.Reg "p" ]);
              Ast.Call (Some "b4", "__bunshin_init_ok", [ Ast.Reg "p" ]);
              Ast.Call (Some "b5", "__bunshin_add_ok", [ Ast.Reg "n"; Ast.Int 1L ]);
              Ast.Call (Some "b6", "__bunshin_mul_ok", [ Ast.Reg "n"; Ast.Int 3L ]);
              Ast.Call (Some "b7", "__bunshin_shift_ok", [ Ast.Reg "n" ]);
              Ast.Call (Some "b8", "__bunshin_code_ptr_ok", [ Ast.Reg "n" ]);
              Ast.Call (None, "free", [ Ast.Reg "p" ]);
              Ast.Call (None, "sys_exit", [ Ast.Int 0L ]);
              Ast.Bin ("s", Ast.Add, Ast.Reg "b1", Ast.Reg "b8");
            ]
            (Ast.Ret (Some (Ast.Reg "s")));
        ];
    ]

(* select on both arms, with an undef condition path *)
let diff_select () =
  modul "select"
    [
      func "main" [ "c" ]
        [
          blk "entry"
            [
              Ast.Select ("v", Ast.Reg "c", Ast.Int 10L, Ast.Int 20L);
              Ast.Select ("w", Ast.Undef, Ast.Int 1L, Ast.Reg "v");
              Ast.Bin ("s", Ast.Add, Ast.Reg "v", Ast.Reg "w");
            ]
            (Ast.Ret (Some (Ast.Reg "s")));
        ];
    ]

(* stack use-after-return: callee leaks its alloca *)
let diff_uar () =
  modul "uar"
    [
      func "leak" []
        [
          blk "entry"
            [
              Ast.Alloca ("p", 2);
              Ast.Store (Ast.Int 9L, Ast.Reg "p");
            ]
            (Ast.Ret (Some (Ast.Reg "p")));
        ];
      func "main" []
        [
          blk "entry"
            [
              Ast.Call (Some "p", "leak", []);
              Ast.Load ("v", Ast.Reg "p");
            ]
            (Ast.Ret (Some (Ast.Reg "v")));
        ];
    ]

(* report handler fires mid-run *)
let diff_detect () =
  modul "detect"
    [
      func "main" [ "n" ]
        [
          blk "entry"
            [ Ast.Cmp ("c", Ast.Sgt, Ast.Reg "n", Ast.Int 0L) ]
            (Ast.CondBr (Ast.Reg "c", "bad", "ok"));
          blk "bad"
            [ Ast.Call (None, "__asan_report_store", [ Ast.Reg "n" ]) ]
            Ast.Unreachable;
          blk "ok" [] (Ast.Ret (Some (Ast.Int 0L)));
        ];
    ]

let diff_div0 () =
  modul "div0"
    [
      func "main" [ "n" ]
        [
          blk "entry"
            [ Ast.Bin ("q", Ast.Sdiv, Ast.Int 100L, Ast.Reg "n") ]
            (Ast.Ret (Some (Ast.Reg "q")));
        ];
    ]

let diff_unreachable () =
  modul "unreach" [ func "main" [] [ blk "entry" [] Ast.Unreachable ] ]

let diff_infinite () =
  modul "spin" [ func "main" [] [ blk "entry" [] (Ast.Br "entry") ] ]

(* ---- the tests ---- *)

let test_diff_corpus () =
  assert_differential "add" (prog_add 2 3) [ [] ];
  assert_differential "branch" (prog_branch ()) [ [ 1L ]; [ -1L ]; [ 0L ] ];
  assert_differential "heap in bounds" (prog_heap_rw 0) [ [] ];
  assert_differential "heap redzone" (prog_heap_rw 4) [ [] ];
  assert_differential "heap wild" (prog_heap_rw 4096) [ [] ];
  assert_differential "uaf" (prog_uaf ~double_free:false) [ [] ];
  assert_differential "double free" (prog_uaf ~double_free:true) [ [] ];
  assert_differential "phi loop" (diff_phi_loop ()) [ [ 0L ]; [ 1L ]; [ 17L ] ];
  assert_differential "fact" (diff_fact ()) [ [ 0L ]; [ 5L ]; [ 10L ] ];
  assert_differential "globals" (diff_globals ()) [ [] ];
  assert_differential "uninit" (diff_uninit ()) [ [] ];
  assert_differential "intrinsics" (diff_intrinsics ()) [ [ 3L ]; [ 100L ]; [ -1L ] ];
  assert_differential "select" (diff_select ()) [ [ 1L ]; [ 0L ] ];
  assert_differential "uar" (diff_uar ()) [ [] ];
  assert_differential "detect" (diff_detect ()) [ [ 1L ]; [ 0L ] ];
  assert_differential "div0" (diff_div0 ()) [ [ 4L ]; [ 0L ] ];
  assert_differential "unreachable" (diff_unreachable ()) [ [] ];
  assert_differential ~fuel:100 "fuel" (diff_infinite ()) [ [] ]

let test_diff_indirect () =
  let m = diff_indirect () in
  let good = Interp.address_of_func m "gadget" in
  assert_differential "indirect" m [ [ good ]; [ 999L ]; [ 0L ] ]

let test_diff_overflow_demo () =
  let ic = open_in "../examples/ir/overflow_demo.bir" in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let m = Parser.parse_exn src in
  assert_differential "overflow_demo" m [ [ 4L ]; [ 9L ]; [ 0L ] ]

let test_diff_cve_cases () =
  List.iter
    (fun case ->
      let m = case.Bunshin_attack.Cve.c_modul in
      let entry = case.Bunshin_attack.Cve.c_entry in
      assert_differential ~entry
        ("cve " ^ case.Bunshin_attack.Cve.c_program)
        m
        [ case.Bunshin_attack.Cve.c_exploit_args; case.Bunshin_attack.Cve.c_benign ])
    Bunshin_attack.Cve.cases

(* Exception parity: lazy resolution errors must surface identically. *)
let test_diff_errors () =
  let catches f = match f () with _ -> None | exception e -> Some e in
  let same name m args =
    let pm = Interp.compile m in
    let fast = catches (fun () -> Interp.run_compiled pm ~entry:"main" ~args) in
    let oracle = catches (fun () -> Interp.run_reference m ~entry:"main" ~args) in
    Alcotest.(check bool) name true (fast = oracle && fast <> None)
  in
  same "unbound register"
    (modul "e1"
       [
         func "main" []
           [ blk "entry" [ Ast.Bin ("x", Ast.Add, Ast.Reg "ghost", Ast.Int 1L) ]
               (Ast.Ret (Some (Ast.Reg "x"))) ];
       ])
    [];
  same "unknown global"
    (modul "e2"
       [
         func "main" []
           [ blk "entry" [ Ast.Load ("x", Ast.Global "nope") ] (Ast.Ret (Some (Ast.Reg "x"))) ];
       ])
    [];
  same "unknown intrinsic"
    (modul "e3"
       [
         func "main" []
           [ blk "entry" [ Ast.Call (Some "x", "frobnicate", []) ] (Ast.Ret None) ];
       ])
    [];
  same "jump to unknown block"
    (modul "e4" [ func "main" [] [ blk "entry" [] (Ast.Br "nowhere") ] ])
    [];
  same "arity mismatch"
    (modul "e5"
       [
         func "callee" [ "a"; "b" ] [ blk "entry" [] (Ast.Ret None) ];
         func "main" []
           [ blk "entry" [ Ast.Call (None, "callee", [ Ast.Int 1L ]) ] (Ast.Ret None) ];
       ])
    [];
  same "function without blocks"
    (modul "e6"
       [
         func "empty" [] [];
         func "main" [] [ blk "entry" [ Ast.Call (None, "empty", []) ] (Ast.Ret None) ];
       ])
    [];
  (* missing entry raises before any state exists, in both engines *)
  let m = prog_add 1 1 in
  let pm = Interp.compile m in
  Alcotest.check_raises "missing entry (compiled)"
    (Invalid_argument "Interp.run: no such function nope") (fun () ->
      ignore (Interp.run_compiled pm ~entry:"nope" ~args:[]));
  Alcotest.check_raises "missing entry (reference)"
    (Invalid_argument "Interp.run: no such function nope") (fun () ->
      ignore (Interp.run_reference m ~entry:"nope" ~args:[]))

(* Telemetry parity: both engines drive the domain counters identically. *)
let test_diff_telemetry () =
  let counters m args =
    let engine run =
      let sink = Bunshin_telemetry.Telemetry.create () in
      let dom = Bunshin_telemetry.Telemetry.domain sink ~name:"diff" in
      ignore (run ~telemetry:dom ~entry:"main" ~args);
      Bunshin_telemetry.Telemetry.metrics_to_text sink
    in
    ( engine (fun ~telemetry ~entry ~args -> Interp.run ~telemetry m ~entry ~args),
      engine (fun ~telemetry ~entry ~args -> Interp.run_reference ~telemetry m ~entry ~args) )
  in
  let m = Inst.apply_exn [ San.asan ] (prog_heap_rw 4) in
  let fast, oracle = counters m [] in
  Alcotest.(check string) "asan oob counters" oracle fast;
  let fast, oracle = counters (diff_intrinsics ()) [ 3L ] in
  Alcotest.(check string) "intrinsics counters" oracle fast

let prop_diff_random_seeds =
  QCheck.Test.make ~name:"differential: random layout seeds" ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range (-4) 20))
    (fun (seed, n) ->
      let m = diff_phi_loop () in
      let config = { Interp.default_config with layout_seed = seed } in
      let args = [ Int64.of_int n ] in
      runs_identical
        (Interp.run ~config m ~entry:"main" ~args)
        (Interp.run_reference ~config m ~entry:"main" ~args))

let prop_diff_random_alloc =
  QCheck.Test.make ~name:"differential: allocator traffic across seeds" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let m = Inst.apply_exn [ San.asan ] (prog_uaf ~double_free:true) in
      let config = { Interp.default_config with layout_seed = seed } in
      runs_identical
        (Interp.run ~config m ~entry:"main" ~args:[])
        (Interp.run_reference ~config m ~entry:"main" ~args:[]))

let () =
  Alcotest.run ~and_exit:false "bunshin_ir_differential"
    [
      ( "differential",
        [
          Alcotest.test_case "corpus x sanitizers x seeds" `Quick test_diff_corpus;
          Alcotest.test_case "indirect calls" `Quick test_diff_indirect;
          Alcotest.test_case "overflow_demo.bir" `Quick test_diff_overflow_demo;
          Alcotest.test_case "cve cases" `Quick test_diff_cve_cases;
          Alcotest.test_case "error parity" `Quick test_diff_errors;
          Alcotest.test_case "telemetry parity" `Quick test_diff_telemetry;
        ] );
      ( "properties",
        qcheck [ prop_diff_random_seeds; prop_diff_random_alloc ] );
    ]

(* ------------------------------------------------------------------ *)
(* Regression: forged absolute pointers.  An integer conjured from thin
   air and used as a pointer (never returned by the allocator) must trap
   as [Wild_pointer] in both engines; the reference interpreter's cell
   lookup used to be an unguarded [Hashtbl.find] that could leak
   [Not_found] out of [run] instead of producing a crash outcome. *)

let forged_ptr_prog ~write =
  let b = B.create "forged" in
  B.start_func b ~name:"main" ~params:[];
  (* Well past anything next_addr will ever hand out in this program. *)
  let wild = B.cst64 0x7FF0_0000L in
  if write then B.store b (B.cst 1) wild else ignore (B.load b wild);
  B.ret b (Some (B.cst 0));
  B.finish b

let test_wild_forged_pointer () =
  List.iter
    (fun write ->
      let m = forged_ptr_prog ~write in
      let pm = Interp.compile m in
      let check_engine name f =
        match f () with
        | r ->
            Alcotest.(check bool)
              (Printf.sprintf "%s %s traps wild" name
                 (if write then "store" else "load"))
              true
              (match r.Interp.outcome with
              | Interp.Crashed (Interp.Wild_pointer a) -> a = 0x7FF0_0000L
              | _ -> false)
        | exception Not_found ->
            Alcotest.failf "%s leaked Not_found on a forged pointer" name
      in
      check_engine "reference" (fun () ->
          Interp.run_reference m ~entry:"main" ~args:[]);
      check_engine "fast" (fun () -> Interp.run_compiled pm ~entry:"main" ~args:[]);
      (* And the two engines must agree on the whole run record. *)
      assert_differential "forged pointer" m [ [] ])
    [ false; true ]

let () =
  Alcotest.run ~and_exit:false "bunshin_ir_regressions"
    [
      ( "wild-pointer",
        [ Alcotest.test_case "forged absolute pointer" `Quick test_wild_forged_pointer ] );
    ]
