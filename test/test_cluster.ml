(* Tests for the distributed NXE (lib/cluster): placement, ship modes,
   verdict parity with the local engine, remote quarantine, wire
   accounting.  Companion to test_nxe.ml / test_faults.ml. *)

module M = Bunshin_machine.Machine
module Sc = Bunshin_syscall.Syscall
module Trace = Bunshin_program.Trace
module Nxe = Bunshin_nxe.Nxe
module Cluster = Bunshin_cluster.Cluster
module Net = Bunshin_net.Net
module Faults = Bunshin_faults.Faults
module F = Bunshin_forensics.Forensics
module Tel = Bunshin_telemetry.Telemetry

let work c = Trace.Work { func = "f"; cost = c }
let wr ?(args = [ 1L; 64L ]) () = Trace.Sys (Sc.write ~args ())
let rd ?(args = [ 3L; 64L ]) () = Trace.Sys (Sc.read ~args ())
let names n = List.init n (fun i -> Printf.sprintf "v%d" i)

let basic_trace ?(units = 20) () =
  List.concat (List.init units (fun i -> [ work 50.0; wr ~args:[ 1L; Int64.of_int i ] () ]))

let read_heavy ?(units = 40) () =
  List.concat
    (List.init units (fun i ->
         [ work 10.0; rd ~args:[ 3L; Int64.of_int i ] () ]
         @ (if i mod 8 = 0 then [ wr ~args:[ 1L; Int64.of_int i ] () ] else [])))

let modes = [ Cluster.Full_remote_lockstep; Cluster.Selective; Cluster.Selective_replicated ]

let cfg ?(nodes = 2) ?(ship = Cluster.Selective_replicated) ?placement ?fault_policy () =
  let c = { Cluster.default_config with nodes; ship } in
  let c = match placement with Some p -> { c with Cluster.placement = p } | None -> c in
  match fault_policy with Some fp -> { c with Cluster.fault_policy = fp } | None -> c

let run ?config ?coverage ?faults n trace =
  Cluster.run_traces ?config ?coverage ?faults ~names:(names n)
    (List.init n (fun _ -> trace))

let finished r = r.Cluster.outcome = `All_finished

(* ------------------------------------------------------------------ *)
(* Clean runs *)

let test_clean_all_modes_all_nodes () =
  let trace = basic_trace () in
  List.iter
    (fun nodes ->
      List.iter
        (fun ship ->
          let r = run ~config:(cfg ~nodes ~ship ()) 3 trace in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%d nodes finished" (Cluster.mode_name ship) nodes)
            true (finished r);
          Alcotest.(check int) "synced all writes" 20 r.Cluster.synced_syscalls;
          Alcotest.(check int) "executed all writes" 20 r.Cluster.executed_syscalls;
          Alcotest.(check int) "one channel" 1 r.Cluster.channels;
          Alcotest.(check int) "node stats per node" nodes
            (List.length r.Cluster.node_stats))
        modes)
    [ 1; 2; 3 ]

let test_single_node_no_wire () =
  (* Everything placed on node 0: the network is never used. *)
  let r = run ~config:(cfg ~nodes:1 ()) 3 (basic_trace ()) in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check int) "no bytes" 0 r.Cluster.bytes_on_wire;
  Alcotest.(check int) "no msgs" 0 r.Cluster.msgs_on_wire

let test_round_robin_placement () =
  let r = run ~config:(cfg ~nodes:2 ()) 4 (basic_trace ~units:4 ()) in
  Alcotest.(check (list int)) "v mod nodes" [ 0; 1; 0; 1 ] r.Cluster.placement

let test_pinned_placement () =
  let r =
    run ~config:(cfg ~nodes:3 ~placement:(Cluster.Pinned [ 0; 2; 2 ]) ()) 3
      (basic_trace ~units:4 ())
  in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check (list int)) "as pinned" [ 0; 2; 2 ] r.Cluster.placement

let test_remote_slower_than_local () =
  (* Same fleet, same work: paying the wire must not be free. *)
  let trace = basic_trace () in
  let local = run ~config:(cfg ~nodes:1 ()) 3 trace in
  let remote = run ~config:(cfg ~nodes:3 ~ship:Cluster.Full_remote_lockstep ()) 3 trace in
  Alcotest.(check bool)
    (Printf.sprintf "remote %.0f > local %.0f" remote.Cluster.total_time local.Cluster.total_time)
    true
    (remote.Cluster.total_time > local.Cluster.total_time)

let test_determinism_same_seed () =
  let lossy = { Net.latency_us = 40.0; bytes_per_us = 50.0; loss = 0.2; retransmit_us = 150.0 }
  and config = cfg ~nodes:3 ~ship:Cluster.Selective () in
  let config = { config with Cluster.link = lossy } in
  let r1 = run ~config 3 (read_heavy ()) and r2 = run ~config 3 (read_heavy ()) in
  Alcotest.(check bool) "finished" true (finished r1);
  Alcotest.(check (float 0.0)) "bit-stable total time" r1.Cluster.total_time r2.Cluster.total_time;
  Alcotest.(check int) "bit-stable bytes" r1.Cluster.bytes_on_wire r2.Cluster.bytes_on_wire;
  Alcotest.(check bool) "bit-stable finishes" true
    (r1.Cluster.variant_finish = r2.Cluster.variant_finish)

(* ------------------------------------------------------------------ *)
(* Ship modes: traffic shape *)

let bytes ?(n = 3) ?(nodes = 2) ship trace =
  let r = run ~config:(cfg ~nodes ~ship ()) n trace in
  Alcotest.(check bool) (Cluster.mode_name ship ^ " finished") true (finished r);
  (r.Cluster.bytes_on_wire, r)

let test_mode_traffic_ordering () =
  let trace = read_heavy () in
  let naive, rn = bytes Cluster.Full_remote_lockstep trace in
  let sel, rs = bytes Cluster.Selective trace in
  let repl, rr = bytes Cluster.Selective_replicated trace in
  Alcotest.(check bool)
    (Printf.sprintf "naive %d > selective %d" naive sel) true (naive > sel);
  Alcotest.(check bool)
    (Printf.sprintf "selective %d > replicated %d" sel repl) true (sel > repl);
  (* Naive locksteps everything; selective only the writes. *)
  Alcotest.(check int) "naive locksteps all" rn.Cluster.synced_syscalls rn.Cluster.lockstep_syscalls;
  Alcotest.(check int) "selective locksteps writes" 5 rs.Cluster.lockstep_syscalls;
  Alcotest.(check bool) "replication served reads" true (rr.Cluster.replicated_results > 0);
  Alcotest.(check int) "no replication outside that mode" 0 rs.Cluster.replicated_results;
  (* Remote acks flowed back in every mode. *)
  Alcotest.(check bool) "remote checks happened" true (rn.Cluster.remote_checked > 0);
  (* The per-kind split sums to the wire totals. *)
  List.iter
    (fun (r : Cluster.report) ->
      let t = r.Cluster.traffic in
      Alcotest.(check int) "traffic split sums to totals" r.Cluster.bytes_on_wire
        Cluster.(t.tf_ship + t.tf_batch + t.tf_release + t.tf_ack + t.tf_flow + t.tf_order))
    [ rn; rs; rr ]

let test_naive_ships_order_entries () =
  (* Weak-determinism order entries ride the wire only in naive mode;
     selective folds them into the batch stream. *)
  let locky =
    List.concat
      (List.init 10 (fun i ->
           [ Trace.Lock 0; work 2.0; Trace.Unlock 0; wr ~args:[ 1L; Int64.of_int i ] () ]))
  in
  let _, rn = bytes ~n:2 Cluster.Full_remote_lockstep locky in
  let _, rs = bytes ~n:2 Cluster.Selective locky in
  Alcotest.(check bool) "order entries recorded" true (rn.Cluster.order_entries > 0);
  Alcotest.(check bool) "naive order traffic" true Cluster.(rn.Cluster.traffic.tf_order > 0);
  Alcotest.(check int) "selective has no order stream" 0 Cluster.(rs.Cluster.traffic.tf_order);
  Alcotest.(check int) "replays equal either way" rn.Cluster.det_replays rs.Cluster.det_replays

let test_multithreaded_spawn_across_nodes () =
  let worker tag =
    [ work 20.0; Trace.Lock 0; work 5.0; Trace.Unlock 0; wr ~args:[ 1L; tag ] () ]
  in
  let mt = [ Trace.Spawn (worker 10L); Trace.Spawn (worker 20L) ] @ worker 0L in
  List.iter
    (fun ship ->
      let r = run ~config:(cfg ~nodes:2 ~ship ()) 2 mt in
      Alcotest.(check bool) (Cluster.mode_name ship ^ " finished") true (finished r);
      Alcotest.(check int) "three channels" 3 r.Cluster.channels;
      Alcotest.(check int) "three writes synced" 3 r.Cluster.synced_syscalls;
      Alcotest.(check int) "order replayed remotely" 3 r.Cluster.det_replays)
    modes

(* ------------------------------------------------------------------ *)
(* Verdict parity: local engine vs every ship mode *)

let alert r =
  match r.Cluster.outcome with `Aborted a -> Some a | `All_finished -> None

let test_divergence_verdict_mode_independent () =
  let leader = [ work 10.0; wr ~args:[ 1L; 42L ] () ] in
  let follower = [ work 10.0; wr ~args:[ 1L; 666L ] () ] in
  let local = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  let local_alert =
    match local.Nxe.outcome with `Aborted a -> a | `All_finished -> Alcotest.fail "local must abort"
  in
  let sigs =
    List.map
      (fun ship ->
        let r =
          Cluster.run_traces ~config:(cfg ~nodes:2 ~ship ()) ~names:(names 2)
            [ leader; follower ]
        in
        (match alert r with
         | Some a ->
           (* The alert record carries no timestamps: plain structural
              equality against the single-host engine's verdict. *)
           Alcotest.(check bool)
             (Cluster.mode_name ship ^ " alert = local alert")
             true (a = local_alert)
         | None -> Alcotest.failf "%s did not abort" (Cluster.mode_name ship));
        match r.Cluster.incident with
        | Some inc -> Cluster.incident_signature inc
        | None -> Alcotest.fail "abort must attach forensics")
      modes
  in
  match sigs with
  | [ a; b; c ] ->
    Alcotest.(check string) "naive = selective signature" a b;
    Alcotest.(check string) "selective = replicated signature" b c
  | _ -> assert false

let test_sequence_divergence_remote () =
  (* The extra follower syscall surfaces as the same premature/extra
     verdict whether the follower is local or across the wire. *)
  let leader = [ work 10.0; wr ~args:[ 1L; 5L ] () ] in
  let follower = [ work 10.0; wr ~args:[ 1L; 5L ] (); rd ~args:[ 3L; 9L ] () ] in
  List.iter
    (fun ship ->
      let r =
        Cluster.run_traces ~config:(cfg ~nodes:2 ~ship ()) ~names:(names 2)
          [ leader; follower ]
      in
      match alert r with
      | Some a ->
        Alcotest.(check int) "variant 1" 1 a.Nxe.al_variant;
        Alcotest.(check bool) "expected end-of-stream" true (a.Nxe.al_expected_sc = None);
        (match a.Nxe.al_got_sc with
         | Some got -> Alcotest.(check string) "extra syscall" "read" got.Sc.name
         | None -> Alcotest.fail "alert should carry the extra syscall")
      | None -> Alcotest.failf "%s did not abort" (Cluster.mode_name ship))
    modes

let test_abort_stops_remote_tail () =
  let tail = List.init 100 (fun _ -> work 100.0) in
  let leader = work 1.0 :: wr ~args:[ 1L; 1L ] () :: tail in
  let follower = work 1.0 :: wr ~args:[ 1L; 2L ] () :: tail in
  let r =
    Cluster.run_traces
      ~config:(cfg ~nodes:2 ~ship:Cluster.Selective_replicated ())
      ~names:(names 2) [ leader; follower ]
  in
  Alcotest.(check bool) "aborted" true (alert r <> None);
  Alcotest.(check bool) "stopped early" true (r.Cluster.total_time < 5000.0)

(* ------------------------------------------------------------------ *)
(* Faults across the wire *)

let coverage3 = [ [ "asan"; "ubsan" ]; [ "asan"; "msan" ]; [ "msan"; "lowfat" ] ]
let quarantine_policy =
  { Nxe.policy = Nxe.Quarantine; heartbeat_timeout = 400.0; restart_backoff = 50.0 }

let units = 12
let chaos_trace () =
  List.concat
    (List.init units (fun i -> [ work 5.0; rd ~args:[ 3L; Int64.of_int i ] () ]))

let stall_v1 = Faults.make [ { Faults.i_variant = 1; i_at = 4; i_kind = Faults.Stall } ]

let test_remote_stall_quarantine_parity () =
  (* v1 lives on node 1 under round-robin: it hangs mid-stream on the far
     side of the wire.  The survivors must complete N−1 with the SAME
     coverage-loss accounting the local engine produces for the same
     stall. *)
  let local =
    Nxe.run_traces
      ~config:{ Nxe.default_config with fault_policy = quarantine_policy }
      ~faults:stall_v1 ~coverage:coverage3 ~names:(names 3)
      (List.init 3 (fun _ -> chaos_trace ()))
  in
  Alcotest.(check bool) "local N-1 finished" true (local.Nxe.outcome = `All_finished);
  List.iter
    (fun ship ->
      let r =
        run
          ~config:(cfg ~nodes:2 ~ship ~fault_policy:quarantine_policy ())
          ~coverage:coverage3 ~faults:stall_v1 3 (chaos_trace ())
      in
      let tag = Cluster.mode_name ship in
      Alcotest.(check bool) (tag ^ ": survivors finished") true (finished r);
      (match List.nth r.Cluster.variant_status 1 with
       | Nxe.Quarantined { q_cause = Nxe.Missed_heartbeat silence; q_restarts; _ } ->
         Alcotest.(check bool) "silence >= timeout" true (silence >= 400.0);
         Alcotest.(check int) "no restarts" 0 q_restarts
       | _ -> Alcotest.fail (tag ^ ": expected Quarantined/Missed_heartbeat"));
      Alcotest.(check int) (tag ^ ": leader executed everything") units
        r.Cluster.executed_syscalls;
      Alcotest.(check (list string))
        (tag ^ ": coverage loss identical to local")
        local.Nxe.coverage_loss r.Cluster.coverage_loss;
      (match r.Cluster.fault_incidents with
       | [ inc ] ->
         Alcotest.(check bool) "fault isolation" true (inc.F.inc_mismatch = F.Fault_isolation);
         Alcotest.(check int) "victim blamed" 1 inc.F.inc_blamed
       | l -> Alcotest.failf "%s: expected one incident, got %d" tag (List.length l));
      Alcotest.(check bool) (tag ^ ": no abort incident") true (r.Cluster.incident = None))
    modes

let test_corrupt_remote_aborts () =
  (* Argument corruption on a remote follower is a divergence, not a
     benign fault — even under Quarantine. *)
  let faults =
    Faults.make
      [ { Faults.i_variant = 1; i_at = 5; i_kind = Faults.Corrupt { c_arg = 1; c_delta = 7L } } ]
  in
  let r =
    run
      ~config:(cfg ~nodes:2 ~ship:Cluster.Selective ~fault_policy:quarantine_policy ())
      ~faults 3 (basic_trace ~units:10 ())
  in
  match alert r with
  | Some a ->
    Alcotest.(check int) "corrupted variant blamed" 1 a.Nxe.al_variant;
    Alcotest.(check bool) "forensics attached" true (r.Cluster.incident <> None)
  | None -> Alcotest.fail "corruption must abort"

let test_leader_fault_aborts_cluster () =
  let faults = Faults.make [ { Faults.i_variant = 0; i_at = 3; i_kind = Faults.Stall } ] in
  let r =
    run
      ~config:(cfg ~nodes:2 ~fault_policy:quarantine_policy ())
      ~faults 3 (chaos_trace ())
  in
  match alert r with
  | Some a -> Alcotest.(check int) "leader named" 0 a.Nxe.al_variant
  | None -> Alcotest.fail "leader fault must abort"

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let test_histograms_and_counters () =
  let sink = Tel.create () in
  let config = { (cfg ~nodes:2 ~ship:Cluster.Selective ()) with Cluster.telemetry = Some sink } in
  let r = run ~config 3 (read_heavy ()) in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check bool) "lockstep wait hist" true
    (List.mem_assoc "lockstep_wait_us" r.Cluster.histograms);
  Alcotest.(check bool) "rtt hist" true (List.mem_assoc "net_rtt_us" r.Cluster.histograms);
  let rtt_samples =
    List.fold_left (fun a (_, c) -> a + c) 0 (List.assoc "net_rtt_us" r.Cluster.histograms)
  in
  Alcotest.(check bool) "rtt observed per lockstep ack" true (rtt_samples > 0);
  let text = Tel.metrics_to_text sink in
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "net bytes counter on sink" true (contains "net.bytes_sent");
  Alcotest.(check bool) "per-link counter on sink" true (contains "net.n0-n1.bytes_sent");
  Alcotest.(check bool) "link stats named" true
    (List.mem_assoc "n0-n1" r.Cluster.link_stats && List.mem_assoc "n1-n0" r.Cluster.link_stats)

(* ------------------------------------------------------------------ *)
(* Validation *)

let test_validation () =
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  let t = basic_trace ~units:2 () in
  Alcotest.(check bool) "nodes >= 1" true
    (invalid (fun () -> run ~config:(cfg ~nodes:0 ()) 2 t));
  Alcotest.(check bool) "pinned wrong length" true
    (invalid (fun () -> run ~config:(cfg ~nodes:2 ~placement:(Cluster.Pinned [ 0 ]) ()) 2 t));
  Alcotest.(check bool) "pinned out of range" true
    (invalid (fun () -> run ~config:(cfg ~nodes:2 ~placement:(Cluster.Pinned [ 0; 5 ]) ()) 2 t));
  Alcotest.(check bool) "leader must be on node 0" true
    (invalid (fun () -> run ~config:(cfg ~nodes:2 ~placement:(Cluster.Pinned [ 1; 0 ]) ()) 2 t));
  Alcotest.(check bool) "restart_once unsupported" true
    (invalid (fun () ->
         run
           ~config:
             (cfg
                ~fault_policy:
                  { Nxe.policy = Nxe.Restart_once; heartbeat_timeout = 100.0; restart_backoff = 10.0 }
                ())
           2 t));
  Alcotest.(check bool) "fork rejected" true
    (invalid (fun () -> run ~config:(cfg ()) 2 [ Trace.Fork [ work 1.0 ]; wr () ]));
  Alcotest.(check bool) "ack_every bounded by ring" true
    (invalid (fun () ->
         run ~config:{ (cfg ()) with Cluster.ack_every = 100; ring_capacity = 8 } 2 t))

(* ------------------------------------------------------------------ *)
(* Property: observation equivalence of the ship modes *)

(* Spawn-free traces only: channel numbering is creation-ordered, so a
   multithreaded interleaving could legitimately differ between runs;
   single-channel traces make verdicts directly comparable. *)
let gen_trace_ops =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (4, map (fun c -> `Work (float_of_int (1 + c))) (int_bound 30));
        (2, map (fun i -> `Read i) (int_bound 100));
        (2, map (fun i -> `Write i) (int_bound 100));
        (1, map (fun l -> `Locked l) (int_bound 2));
      ]
  in
  list_size (1 -- 20) leaf

let trace_of_ops ops =
  List.concat_map
    (function
      | `Work c -> [ work c ]
      | `Read i -> [ rd ~args:[ 3L; Int64.of_int i ] () ]
      | `Write i -> [ wr ~args:[ 1L; Int64.of_int i ] () ]
      | `Locked l ->
        [ Trace.Lock l; Trace.Work { func = "crit"; cost = 1.0 }; Trace.Unlock l ])
    ops
  @ [ wr ~args:[ 1L; 9999L ] () ]

let mutate_kth_syscall ~k ~delta trace =
  let seen = ref 0 in
  List.map
    (function
      | Trace.Sys sc when sc.Sc.args <> [] ->
        let here = !seen in
        incr seen;
        if here = k then
          let args =
            match sc.Sc.args with a :: x :: rest -> a :: Int64.add x delta :: rest | l -> l
          in
          Trace.Sys (Sc.make ~args sc.Sc.name)
        else Trace.Sys sc
      | op -> op)
    trace

let verdict r =
  match r.Cluster.outcome with
  | `All_finished -> None
  | `Aborted a ->
    Some (a.Nxe.al_channel, a.Nxe.al_position, a.Nxe.al_variant, a.Nxe.al_expected, a.Nxe.al_got)

let prop_ship_modes_observation_equivalent =
  QCheck.Test.make
    ~name:"cluster: naive, selective and replicated agree on the verdict" ~count:30
    QCheck.(
      quad (QCheck.make gen_trace_ops) (int_range 0 20) (int_range 2 3) bool)
    (fun (ops, k, nodes, clean) ->
      (* QCheck's shrinker can step outside int_range: clamp. *)
      let nodes = max 2 (min 3 nodes) in
      let base = trace_of_ops ops in
      let follower = if clean then base else mutate_kth_syscall ~k ~delta:500L base in
      (* k can exceed the syscall count, leaving the follower untouched. *)
      let mutated = follower <> base in
      let verdicts =
        List.map
          (fun ship ->
            verdict
              (Cluster.run_traces ~config:(cfg ~nodes ~ship ()) ~names:(names 2)
                 [ base; follower ]))
          modes
      in
      match verdicts with
      | [ a; b; c ] -> a = b && b = c && (mutated = (a <> None))
      | _ -> false)

let prop_cluster_matches_local_engine =
  QCheck.Test.make ~name:"cluster: verdicts match the single-host engine" ~count:20
    QCheck.(triple (QCheck.make gen_trace_ops) (int_range 0 20) bool)
    (fun (ops, k, clean) ->
      let base = trace_of_ops ops in
      let follower = if clean then base else mutate_kth_syscall ~k ~delta:500L base in
      let local =
        match (Nxe.run_traces ~names:(names 2) [ base; follower ]).Nxe.outcome with
        | `All_finished -> None
        | `Aborted a ->
          Some (a.Nxe.al_channel, a.Nxe.al_position, a.Nxe.al_variant, a.Nxe.al_expected, a.Nxe.al_got)
      in
      let remote =
        verdict
          (Cluster.run_traces
             ~config:(cfg ~nodes:2 ~ship:Cluster.Selective_replicated ())
             ~names:(names 2) [ base; follower ])
      in
      local = remote)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "bunshin_cluster"
    [
      ( "clean",
        [
          Alcotest.test_case "all modes x nodes finish" `Quick test_clean_all_modes_all_nodes;
          Alcotest.test_case "single node uses no wire" `Quick test_single_node_no_wire;
          Alcotest.test_case "round-robin placement" `Quick test_round_robin_placement;
          Alcotest.test_case "pinned placement" `Quick test_pinned_placement;
          Alcotest.test_case "remote slower than local" `Quick test_remote_slower_than_local;
          Alcotest.test_case "bit-stable under a seed" `Quick test_determinism_same_seed;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "naive > selective > replicated" `Quick test_mode_traffic_ordering;
          Alcotest.test_case "order stream only in naive" `Quick test_naive_ships_order_entries;
          Alcotest.test_case "multithreaded across nodes" `Quick test_multithreaded_spawn_across_nodes;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "argument divergence mode-independent" `Quick
            test_divergence_verdict_mode_independent;
          Alcotest.test_case "sequence divergence remote" `Quick test_sequence_divergence_remote;
          Alcotest.test_case "abort stops remote tail" `Quick test_abort_stops_remote_tail;
        ] );
      ( "faults",
        [
          Alcotest.test_case "remote stall quarantine parity" `Quick
            test_remote_stall_quarantine_parity;
          Alcotest.test_case "remote corrupt aborts" `Quick test_corrupt_remote_aborts;
          Alcotest.test_case "leader fault aborts" `Quick test_leader_fault_aborts_cluster;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "histograms and counters" `Quick test_histograms_and_counters;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "properties",
        qcheck [ prop_ship_modes_observation_equivalent; prop_cluster_matches_local_engine ] );
    ]
