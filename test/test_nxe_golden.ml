(* Golden-report regression tests for the NXE.

   Every field of [Nxe.report] — outcome, forensics incident JSON, fault
   incidents, counts, gap stats, per-variant status, histograms, machine
   stats — is rendered to a canonical text form (floats in hex, so the
   comparison is bit-exact) and compared against a committed snapshot in
   test/golden/.  The corpus covers strict and selective lockstep, clean
   and divergent runs, fault quarantine and restart, signals, shared
   memory, weak determinism and multi-group traces, so any engine change
   that perturbs the simulated schedule — not just the verdict — fails
   here.

   Each scenario additionally runs with a profile collector attached and
   with a telemetry sink attached: both are documented as pure
   observation, so all three reports must render byte-identically.

   Regenerate with:
     BUNSHIN_REGEN_GOLDEN=test/golden dune exec test/test_nxe_golden.exe *)

module M = Bunshin_machine.Machine
module Sc = Bunshin_syscall.Syscall
module Trace = Bunshin_program.Trace
module Program = Bunshin_program.Program
module San = Bunshin_sanitizer.Sanitizer
module Cost = Bunshin_sanitizer.Cost_model
module Nxe = Bunshin_nxe.Nxe
module F = Bunshin_forensics.Forensics
module Faults = Bunshin_faults.Faults
module Pr = Bunshin_profile.Profile
module Tel = Bunshin_telemetry.Telemetry

(* ------------------------------------------------------------------ *)
(* Canonical report rendering *)

let fl f = Printf.sprintf "%h" f (* hex float: bit-exact round trip *)

let sc_str = function
  | None -> "-"
  | Some sc -> Format.asprintf "%a" Sc.pp sc

let render (r : Nxe.report) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  (match r.Nxe.outcome with
   | `All_finished -> line "outcome: all_finished"
   | `Aborted a ->
     line "outcome: aborted chan=%d pos=%d variant=%d" a.Nxe.al_channel a.Nxe.al_position
       a.Nxe.al_variant;
     line "  expected: %s" a.Nxe.al_expected;
     line "  got: %s" a.Nxe.al_got;
     line "  expected_sc: %s" (sc_str a.Nxe.al_expected_sc);
     line "  got_sc: %s" (sc_str a.Nxe.al_got_sc));
  (match r.Nxe.incident with
   | None -> line "incident: -"
   | Some inc -> line "incident: %s" (F.to_json inc));
  line "total_time: %s" (fl r.Nxe.total_time);
  line "variant_finish: %s" (String.concat " " (List.map fl r.Nxe.variant_finish));
  line "variant_cpu: %s" (String.concat " " (List.map fl r.Nxe.variant_cpu));
  line "synced_syscalls: %d" r.Nxe.synced_syscalls;
  line "executed_syscalls: %d" r.Nxe.executed_syscalls;
  line "lockstep_syscalls: %d" r.Nxe.lockstep_syscalls;
  line "avg_syscall_gap: %s" (fl r.Nxe.avg_syscall_gap);
  line "max_syscall_gap: %d" r.Nxe.max_syscall_gap;
  line "order_list_length: %d" r.Nxe.order_list_length;
  line "det_replays: %d" r.Nxe.det_replays;
  line "channels: %d" r.Nxe.channels;
  List.iteri
    (fun v st ->
      match st with
      | Nxe.Healthy -> line "variant_status[%d]: healthy" v
      | Nxe.Quarantined { q_time; q_cause; q_restarts } ->
        line "variant_status[%d]: quarantined t=%s cause=%s restarts=%d" v (fl q_time)
          (Nxe.cause_string q_cause) q_restarts
      | Nxe.Recovered { q_time; q_cause; r_time } ->
        line "variant_status[%d]: recovered q=%s cause=%s r=%s" v (fl q_time)
          (Nxe.cause_string q_cause) (fl r_time))
    r.Nxe.variant_status;
  line "coverage_loss: %s" (String.concat "," r.Nxe.coverage_loss);
  List.iteri (fun i inc -> line "fault_incident[%d]: %s" i (F.to_json inc))
    r.Nxe.fault_incidents;
  List.iter
    (fun (name, cells) ->
      line "hist %s: %s" name
        (String.concat " "
           (List.map (fun (ub, c) -> Printf.sprintf "%s:%d" (fl ub) c) cells)))
    r.Nxe.histograms;
  line "machine: total=%s ctx=%d pressure_peak=%s" (fl r.Nxe.machine_stats.M.total_time)
    r.Nxe.machine_stats.M.context_switches
    (fl r.Nxe.machine_stats.M.cache_pressure_peak);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Scenario corpus *)

let work c = Trace.Work { func = "f"; cost = c }
let wr args = Trace.Sys (Sc.write ~args ())
let rd args = Trace.Sys (Sc.read ~args ())
let names n = List.init n (fun i -> Printf.sprintf "v%d" i)

(* A trace exercising most op kinds: locks, barrier, spawned threads,
   shared counters, shared-memory reads, a fork and sync fences. *)
let rich_trace () =
  let child = [ work 6.0; wr [ 1L; 70L ] ] in
  let worker tag =
    [
      work 12.0;
      Trace.Lock 0;
      work 2.0;
      Trace.Incr 1;
      Trace.Unlock 0;
      Trace.Sys_shared (Sc.write ~args:[ 1L; tag ] (), 1);
      Trace.Barrier (0, 3);
    ]
  in
  [ Trace.Marker Trace.Main_entered ]
  @ [ Trace.Spawn (worker 10L); Trace.Spawn (worker 20L) ]
  @ worker 0L
  @ [
      Trace.Shared_read { region = 2; counter = 5 };
      Trace.Sys_shared (Sc.write ~args:[ 1L; 3L ] (), 5);
      Trace.Idle 4.0;
      Trace.Fork child;
      work 5.0;
      rd [ 3L; 8L ];
      wr [ 1L; 9L ];
      Trace.Marker Trace.About_to_exit;
      Trace.Sys (Sc.exit_group ());
    ]

let asym_traces () =
  let mk cost =
    List.concat
      (List.init 18 (fun i ->
           [ work cost; rd [ 3L; Int64.of_int i ]; wr [ 1L; Int64.of_int i ] ]))
  in
  [ mk 2.0; mk 9.0 ]

(* [diverge_at ~pos:(-1)] is a clean identical-variant corpus. *)
let diverge_at ~pos ~tag n =
  List.init n (fun v ->
      List.concat
        (List.init 8 (fun i ->
             let x = if v = n - 1 && i = pos then tag else Int64.of_int i in
             [ work 4.0; wr [ 1L; x ] ])))

let small_prog =
  {
    Program.name = "golden";
    funcs = [ { Program.fn_name = "f"; fn_profile = Cost.typical_profile } ];
    working_set = 1.0;
    gen_trace =
      (fun _ ->
        List.concat (List.init 10 (fun i -> [ work 40.0; wr [ 1L; Int64.of_int i ] ])));
  }

let stall_policy policy =
  { Nxe.policy; heartbeat_timeout = 200.0; restart_backoff = 50.0 }

(* Each scenario takes the instrumentation to attach and must pass it on:
   the harness runs it bare, with a profile collector, and with a
   telemetry sink, expecting identical reports. *)
type scenario = {
  s_name : string;
  s_n : int; (* variant count, for the profile collector *)
  s_run : profile:Pr.Collector.t option -> telemetry:Tel.sink option -> Nxe.report;
}

let sc name n run = { s_name = name; s_n = n; s_run = run }

let base_cfg telemetry = { Nxe.default_config with telemetry }

let scenarios =
  [
    sc "strict_mt" 3 (fun ~profile ~telemetry ->
        Nxe.run_traces ~config:(base_cfg telemetry) ?profile ~names:(names 3)
          (List.init 3 (fun _ -> rich_trace ())));
    sc "selective_mt" 3 (fun ~profile ~telemetry ->
        Nxe.run_traces
          ~config:{ (base_cfg telemetry) with mode = Nxe.Selective_lockstep }
          ?profile ~names:(names 3)
          (List.init 3 (fun _ -> rich_trace ())));
    sc "selective_runahead" 2 (fun ~profile ~telemetry ->
        Nxe.run_traces
          ~config:
            { (base_cfg telemetry) with mode = Nxe.Selective_lockstep; ring_capacity = 4 }
          ?profile ~names:(names 2) (asym_traces ()));
    sc "selective_capacity1" 2 (fun ~profile ~telemetry ->
        Nxe.run_traces
          ~config:
            { (base_cfg telemetry) with mode = Nxe.Selective_lockstep; ring_capacity = 1 }
          ?profile ~names:(names 2) (asym_traces ()));
    sc "strict_diverge_arg" 3 (fun ~profile ~telemetry ->
        Nxe.run_traces ~config:(base_cfg telemetry) ?profile ~names:(names 3)
          (diverge_at ~pos:3 ~tag:999L 3));
    sc "selective_diverge_arg" 3 (fun ~profile ~telemetry ->
        Nxe.run_traces
          ~config:{ (base_cfg telemetry) with mode = Nxe.Selective_lockstep }
          ?profile ~names:(names 3) (diverge_at ~pos:5 ~tag:777L 3));
    sc "strict_diverge_seq" 2 (fun ~profile ~telemetry ->
        let l = [ work 4.0; wr [ 1L; 1L ] ] in
        Nxe.run_traces ~config:(base_cfg telemetry) ?profile ~names:(names 2)
          [ l; l @ [ rd [ 3L; 2L ] ] ]);
    sc "quarantine_stall" 3 (fun ~profile ~telemetry ->
        let faults =
          Faults.make [ { Faults.i_variant = 1; i_at = 2; i_kind = Faults.Stall } ]
        in
        Nxe.run_traces
          ~config:{ (base_cfg telemetry) with fault_policy = stall_policy Nxe.Quarantine }
          ~faults
          ~coverage:[ [ "asan"; "msan" ]; [ "msan" ]; [ "asan" ] ]
          ?profile ~names:(names 3) (diverge_at ~pos:(-1) ~tag:0L 3));
    sc "restart_die" 3 (fun ~profile ~telemetry ->
        let faults =
          Faults.make [ { Faults.i_variant = 2; i_at = 1; i_kind = Faults.Die } ]
        in
        Nxe.run_traces
          ~config:
            { (base_cfg telemetry) with fault_policy = stall_policy Nxe.Restart_once }
          ~faults ?profile ~names:(names 3) (diverge_at ~pos:(-1) ~tag:0L 3));
    sc "abort_on_death" 2 (fun ~profile ~telemetry ->
        let faults =
          Faults.make [ { Faults.i_variant = 1; i_at = 1; i_kind = Faults.Die } ]
        in
        Nxe.run_traces ~config:(base_cfg telemetry) ~faults ?profile ~names:(names 2)
          (diverge_at ~pos:(-1) ~tag:0L 2));
    sc "delay_corrupt" 2 (fun ~profile ~telemetry ->
        let faults =
          Faults.make
            [
              { Faults.i_variant = 1; i_at = 1;
                i_kind = Faults.Delay { d_each = 9.0; d_count = 2 } };
              { Faults.i_variant = 1; i_at = 4;
                i_kind = Faults.Corrupt { c_arg = 1; c_delta = 13L } };
            ]
        in
        Nxe.run_traces ~config:(base_cfg telemetry) ~faults ?profile ~names:(names 2)
          (diverge_at ~pos:(-1) ~tag:0L 2));
    sc "signals" 2 (fun ~profile ~telemetry ->
        let handler = [ work 3.0; wr [ 2L; 123L ] ] in
        Nxe.run_traces ~config:(base_cfg telemetry)
          ~signals:[ (30.0, handler) ]
          ?profile ~names:(names 2) (diverge_at ~pos:(-1) ~tag:0L 2));
    sc "shared_mem_off" 2 (fun ~profile ~telemetry ->
        Nxe.run_traces
          ~config:{ (base_cfg telemetry) with sync_shared_memory = false }
          ?profile ~names:(names 2)
          (List.init 2 (fun _ -> rich_trace ())));
    sc "weak_det_off" 2 (fun ~profile ~telemetry ->
        Nxe.run_traces
          ~config:{ (base_cfg telemetry) with weak_determinism = false }
          ?profile ~names:(names 2)
          (List.init 2 (fun _ -> rich_trace ())));
    sc "builds_sanitized" 3 (fun ~profile ~telemetry ->
        Nxe.run_builds ~config:(base_cfg telemetry) ~jitter:0.03 ~seed:5 ?profile
          [
            Program.full [ San.asan ] small_prog;
            Program.full [ San.msan ] small_prog;
            Program.baseline small_prog;
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Harness *)

let regen_dir = Sys.getenv_opt "BUNSHIN_REGEN_GOLDEN"

let golden_path name =
  match regen_dir with
  | Some d -> Filename.concat d (name ^ ".golden")
  | None -> Filename.concat "golden" (name ^ ".golden")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let () =
  let failures = ref [] in
  let fail s = failures := s :: !failures in
  List.iter
    (fun s ->
      let base = render (s.s_run ~profile:None ~telemetry:None) in
      let with_profile =
        render (s.s_run ~profile:(Some (Pr.Collector.create s.s_n)) ~telemetry:None)
      in
      if with_profile <> base then
        fail (s.s_name ^ ": profile-attached report differs from bare run");
      let with_tel =
        render (s.s_run ~profile:None ~telemetry:(Some (Tel.create ())))
      in
      if with_tel <> base then
        fail (s.s_name ^ ": telemetry-attached report differs from bare run");
      (match regen_dir with
       | Some _ -> write_file (golden_path s.s_name) base
       | None ->
         let path = golden_path s.s_name in
         if not (Sys.file_exists path) then fail (s.s_name ^ ": missing golden " ^ path)
         else begin
           let want = read_file path in
           if want <> base then begin
             fail (s.s_name ^ ": report drifted from golden");
             (* Leave the fresh rendering in the build dir for diffing. *)
             write_file (s.s_name ^ ".fresh") base
           end
         end);
      print_string ("golden " ^ s.s_name ^ ": checked\n"))
    scenarios;
  match !failures with
  | [] -> if regen_dir <> None then print_string "goldens regenerated\n"
  | fs ->
    List.iter (fun f -> prerr_endline ("FAIL " ^ f)) fs;
    exit 1
