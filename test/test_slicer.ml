(* Tests for Bunshin_slicer: check discovery and backward-slicing removal
   (§4.1 of the paper). *)

open Bunshin_ir
module B = Builder
module San = Bunshin_sanitizer.Sanitizer
module Inst = Bunshin_sanitizer.Instrument
module Slicer = Bunshin_slicer.Slicer

let run_main ?config m args = Interp.run ?config m ~entry:"main" ~args

(* main(idx) { p = malloc(4); p[idx] = 7; print(p[idx]); ret 0 } *)
let heap_prog () =
  let b = B.create "heap" in
  B.start_func b ~name:"main" ~params:[ "idx" ];
  let p = B.call b "malloc" [ B.cst 4 ] in
  let q = B.gep b p (Ast.Reg "idx") in
  B.store b (B.cst 7) q;
  let v = B.load b q in
  B.call_void b "print" [ v ];
  B.ret b (Some (B.cst 0));
  B.finish b

(* Two functions, each with one checked access. *)
let two_func_prog () =
  let b = B.create "two" in
  B.start_func b ~name:"reader" ~params:[ "p" ];
  let v = B.load b (Ast.Reg "p") in
  B.ret b (Some v);
  B.start_func b ~name:"writer" ~params:[ "p"; "x" ];
  B.store b (Ast.Reg "x") (Ast.Reg "p");
  B.ret b None;
  B.start_func b ~name:"main" ~params:[ "idx" ];
  let p = B.call b "malloc" [ B.cst 4 ] in
  let q = B.gep b p (Ast.Reg "idx") in
  B.call_void b "writer" [ q; B.cst 9 ];
  let v = B.call b "reader" [ q ] in
  B.call_void b "print" [ v ];
  B.ret b None;
  B.finish b

(* ------------------------------------------------------------------ *)
(* Discovery *)

let test_discover_counts () =
  let base = heap_prog () in
  Alcotest.(check int) "baseline has no sinks" 0 (List.length (Slicer.discover base));
  let inst = Inst.apply_exn [ San.asan ] base in
  Alcotest.(check int) "asan adds two sinks" 2 (List.length (Slicer.discover inst))

let test_discover_identifies_handler () =
  let inst = Inst.apply_exn [ San.asan ] (heap_prog ()) in
  let handlers = List.map (fun s -> s.Slicer.sk_handler) (Slicer.discover inst) in
  Alcotest.(check (list string)) "handlers" [ "__asan_report_store"; "__asan_report_load" ]
    handlers

let test_discover_ignores_metadata () =
  (* MSan metadata (counter update per store) contains stores but no report
     handler: it must not be discovered. *)
  let inst = Inst.apply_exn [ San.msan ] (heap_prog ()) in
  let sinks = Slicer.discover inst in
  Alcotest.(check bool) "only msan checks" true
    (List.for_all (fun s -> s.Slicer.sk_handler = "__msan_report") sinks)

let test_per_function_counts () =
  let inst = Inst.apply_exn [ San.asan ] (two_func_prog ()) in
  let counts = Slicer.per_function_check_count inst in
  Alcotest.(check (list (pair string int)))
    "per function" [ ("reader", 1); ("writer", 1); ("main", 0) ] counts

(* ------------------------------------------------------------------ *)
(* Removal *)

let test_remove_restores_benign_behavior () =
  let base = heap_prog () in
  let inst = Inst.apply_exn [ San.asan ] base in
  let removed = Slicer.remove_checks inst in
  Verify.check_exn removed;
  let r0 = run_main base [ 2L ] in
  let r1 = run_main removed [ 2L ] in
  Alcotest.(check bool) "benign events equal" true (Interp.events_equal r0 r1)

let test_remove_disables_detection () =
  let inst = Inst.apply_exn [ San.asan ] (heap_prog ()) in
  let removed = Slicer.remove_checks inst in
  let r = run_main removed [ 4L ] in
  (* Like the baseline: silent corruption, no detection. *)
  Alcotest.(check bool) "no longer detected" true
    (match r.Interp.outcome with Interp.Finished _ -> true | _ -> false)

let test_remove_removes_all_sinks () =
  let inst = Inst.apply_exn [ San.asan ] (heap_prog ()) in
  let removed = Slicer.remove_checks inst in
  Alcotest.(check int) "no sinks left" 0 (List.length (Slicer.discover removed))

let test_remove_keeps_metadata () =
  (* The ASan shadow-counter updates are metadata maintenance; removal must
     keep them (the paper: removing them breaks sanitizer correctness). *)
  let inst = Inst.apply_exn [ San.asan ] (heap_prog ()) in
  let removed = Slicer.remove_checks inst in
  let touches_metadata_global m =
    List.exists
      (fun f ->
        List.exists
          (fun bl ->
            List.exists
              (fun i ->
                List.exists
                  (function Ast.Global g -> g = Inst.asan_metadata_global | _ -> false)
                  (Ast.uses_of_instr i))
              bl.Ast.b_instrs)
          f.Ast.f_blocks)
      m.Ast.m_funcs
  in
  Alcotest.(check bool) "metadata stores survive" true (touches_metadata_global removed)

let test_remove_instruction_count () =
  let base = heap_prog () in
  let inst = Inst.apply_exn [ San.asan ] base in
  let removed = Slicer.remove_checks inst in
  let n = Slicer.removed_instruction_count inst removed in
  (* Each ASan check: 1 condition call + 1 sink-body call = 2 instructions,
     and there are two checks. *)
  Alcotest.(check int) "4 instructions removed" 4 n

let test_remove_only_selected_functions () =
  let inst = Inst.apply_exn [ San.asan ] (two_func_prog ()) in
  let removed = Slicer.remove_checks ~in_funcs:[ "reader" ] inst in
  let counts = Slicer.per_function_check_count removed in
  Alcotest.(check (list (pair string int)))
    "writer keeps its check" [ ("reader", 0); ("writer", 1); ("main", 0) ] counts;
  (* The surviving check still works: oob write via writer is detected. *)
  let r = run_main removed [ 5L ] in
  Alcotest.(check bool) "writer check fires" true
    (match r.Interp.outcome with
     | Interp.Detected d -> d.Interp.d_func = "writer"
     | _ -> false)

let test_remove_by_handler () =
  (* Instrument with ASan + a UBSan sub, then strip only ASan checks. *)
  let sub = Option.get (San.find_ubsan_sub "integer-divide-by-zero") in
  let b = B.create "mix" in
  B.start_func b ~name:"main" ~params:[ "idx"; "n" ];
  let p = B.call b "malloc" [ B.cst 4 ] in
  let q = B.gep b p (Ast.Reg "idx") in
  B.store b (B.cst 1) q;
  let v = B.sdiv b (B.cst 10) (Ast.Reg "n") in
  B.call_void b "print" [ v ];
  B.ret b None;
  let inst = Inst.apply_exn [ San.asan; sub ] (B.finish b) in
  let stripped =
    Slicer.remove_checks
      ~handler_matches:(fun h -> String.length h >= 6 && String.sub h 0 6 = "__asan")
      inst
  in
  Verify.check_exn stripped;
  (* ASan check gone: oob store into the redzone is silent now. *)
  let oob = run_main stripped [ 4L; 1L ] in
  Alcotest.(check bool) "asan check gone" true
    (match oob.Interp.outcome with Interp.Finished _ -> true | _ -> false);
  (* UBSan check kept: div-by-zero still detected. *)
  let div0 = run_main stripped [ 1L; 0L ] in
  Alcotest.(check bool) "ubsan kept" true
    (match div0.Interp.outcome with
     | Interp.Detected d -> d.Interp.d_handler = "__ubsan_report_divrem"
     | _ -> false)

let test_remove_idempotent () =
  let inst = Inst.apply_exn [ San.asan ] (heap_prog ()) in
  let once = Slicer.remove_checks inst in
  let twice = Slicer.remove_checks once in
  Alcotest.(check int) "second pass removes nothing" 0
    (Slicer.removed_instruction_count once twice)

let test_check_distribution_union_covers () =
  (* The core check-distribution guarantee: split functions over two
     variants; each alone misses some errors, together they catch
     everything the full instrumentation catches. *)
  let base = two_func_prog () in
  let inst = Inst.apply_exn [ San.asan ] base in
  (* Variant A keeps checks in reader; variant B keeps checks in writer. *)
  let variant_a = Slicer.remove_checks ~in_funcs:[ "writer" ] inst in
  let variant_b = Slicer.remove_checks ~in_funcs:[ "reader" ] inst in
  let detected m idx =
    match (run_main m [ Int64.of_int idx ]).Interp.outcome with
    | Interp.Detected _ -> true
    | _ -> false
  in
  for idx = 0 to 8 do
    let full = detected inst idx in
    let union = detected variant_a idx || detected variant_b idx in
    Alcotest.(check bool) (Printf.sprintf "idx %d union = full" idx) full union
  done;
  (* And the split is real: variant A alone misses the oob write. *)
  Alcotest.(check bool) "A misses write check" false (detected variant_a 5 && not (detected variant_b 5))

(* ------------------------------------------------------------------ *)
(* Random-program properties: generate small well-formed programs and
   check the pipeline's metamorphic relations on each. *)

type gop =
  | GStore of int * int * int (* buffer, in-bounds index, value *)
  | GLoad of int * int
  | GArith of int
  | GPrint

let gen_gop =
  QCheck.Gen.(
    frequency
      [
        (3, map3 (fun b i v -> GStore (b, i, v)) (int_bound 1) (int_bound 3) (int_bound 100));
        (3, map2 (fun b i -> GLoad (b, i)) (int_bound 1) (int_bound 3));
        (2, map (fun v -> GArith v) (int_bound 50));
        (2, return GPrint);
      ])

let build_program ops =
  let b = B.create "gen" in
  B.start_func b ~name:"main" ~params:[];
  let buf0 = B.call b "malloc" [ B.cst 4 ] in
  let buf1 = B.call b "malloc" [ B.cst 4 ] in
  let buf = function 0 -> buf0 | _ -> buf1 in
  let acc =
    List.fold_left
      (fun acc op ->
        match op with
        | GStore (bi, i, v) ->
          B.store b (B.cst v) (B.gep b (buf bi) (B.cst i));
          acc
        | GLoad (bi, i) ->
          (* Ensure the slot is initialised before the read. *)
          let p = B.gep b (buf bi) (B.cst i) in
          B.store b acc p;
          B.add b acc (B.load b p)
        | GArith v -> B.add b acc (B.cst v)
        | GPrint ->
          B.call_void b "print" [ acc ];
          acc)
      (B.cst 1) ops
  in
  B.call_void b "print" [ acc ];
  B.ret b (Some acc);
  B.finish b

let arb_program =
  QCheck.make
    ~print:(fun ops -> string_of_int (List.length ops))
    QCheck.Gen.(list_size (1 -- 25) gen_gop)

let sanitizer_sets =
  [ [ San.asan ]; [ San.softbound; San.cets ]; [ San.msan ];
    [ San.asan; Option.get (San.find_ubsan_sub "signed-integer-overflow") ] ]

let prop_generated_pipeline_roundtrip =
  QCheck.Test.make ~name:"slicer: random programs, instrument;remove ~ baseline" ~count:120
    arb_program
    (fun ops ->
      let base = build_program ops in
      Verify.check_exn base;
      let r0 = run_main base [] in
      List.for_all
        (fun sans ->
          let inst = Inst.apply_exn sans base in
          Verify.check_exn inst;
          let removed = Slicer.remove_checks inst in
          Verify.check_exn removed;
          let r1 = run_main inst [] in
          let r2 = run_main removed [] in
          (* Benign by construction: instrumentation must be transparent and
             removal must restore the baseline exactly. *)
          Interp.events_equal r0 r1 && Interp.events_equal r0 r2
          && List.length (Slicer.discover removed) = 0)
        sanitizer_sets)

let prop_generated_sink_counts =
  QCheck.Test.make ~name:"slicer: sink count = guarded accesses (asan)" ~count:120
    arb_program
    (fun ops ->
      let base = build_program ops in
      let inst = Inst.apply_exn [ San.asan ] base in
      (* ASan guards every load and store: each GStore compiles to one
         guarded store; each GLoad to one guarded init-store plus one
         guarded load. *)
      let expected =
        List.fold_left
          (fun acc op ->
            match op with GStore _ -> acc + 1 | GLoad _ -> acc + 2 | GArith _ | GPrint -> acc)
          0 ops
      in
      List.length (Slicer.discover inst) = expected)

(* ------------------------------------------------------------------ *)
(* Regression: the backward slice used to resolve instruction locations
   with an unguarded [Hashtbl.find], so a malformed module could escape
   [remove_checks] as a bare [Not_found].  The contract now is: removal
   either succeeds or raises the descriptive [Slicer.Error] — never a
   stray [Not_found].  Exercise it on hand-built adversarial shapes the
   Builder would never produce. *)

let ablk label instrs term = { Ast.b_label = label; b_instrs = instrs; b_term = term }
let afunc name params blocks = { Ast.f_name = name; f_params = params; f_blocks = blocks }
let amodul name funcs = { Ast.m_name = name; m_globals = []; m_funcs = funcs }

let sink_block label =
  ablk label [ Ast.Call (None, "__asan_report_load", []) ] Ast.Unreachable

(* One sink guarded by two CondBrs on the SAME condition register: the
   slice must wait for the second guard before deleting the chain. *)
let adv_shared_condition () =
  amodul "adv_shared"
    [
      afunc "f" [ "p" ]
        [
          ablk "entry"
            [
              Ast.Bin ("a", Ast.Add, Ast.Reg "p", Ast.Int 1L);
              Ast.Cmp ("c", Ast.Slt, Ast.Reg "a", Ast.Int 100L);
            ]
            (Ast.CondBr (Ast.Reg "c", "ok1", "bad"));
          ablk "ok1" [] (Ast.CondBr (Ast.Reg "c", "ok2", "bad"));
          ablk "ok2" [] (Ast.Ret None);
          sink_block "bad";
        ];
    ]

(* Duplicate block labels: the location index (label, idx) collides, so
   definition lookups can disagree with the instruction table. *)
let adv_duplicate_labels () =
  amodul "adv_dup"
    [
      afunc "f" [ "p" ]
        [
          ablk "dup"
            [
              Ast.Bin ("x", Ast.Add, Ast.Reg "p", Ast.Int 1L);
              Ast.Cmp ("c", Ast.Slt, Ast.Reg "x", Ast.Int 9L);
            ]
            (Ast.CondBr (Ast.Reg "c", "dup", "bad"));
          ablk "dup" [ Ast.Bin ("y", Ast.Add, Ast.Int 1L, Ast.Int 2L) ] (Ast.Ret None);
          sink_block "bad";
        ];
    ]

(* The condition register is redefined: def_loc keeps only the last
   definition. *)
let adv_redefined_condition () =
  amodul "adv_redef"
    [
      afunc "f" [ "p" ]
        [
          ablk "entry"
            [
              Ast.Cmp ("c", Ast.Slt, Ast.Reg "p", Ast.Int 1L);
              Ast.Cmp ("c", Ast.Slt, Ast.Reg "p", Ast.Int 2L);
            ]
            (Ast.CondBr (Ast.Reg "c", "ok", "bad"));
          ablk "ok" [] (Ast.Ret None);
          sink_block "bad";
        ];
    ]

(* The condition is a bare parameter (no defining instruction at all). *)
let adv_param_condition () =
  amodul "adv_param"
    [
      afunc "f" [ "c" ]
        [
          ablk "entry" [] (Ast.CondBr (Ast.Reg "c", "ok", "bad"));
          ablk "ok" [] (Ast.Ret None);
          sink_block "bad";
        ];
    ]

let test_remove_never_leaks_not_found () =
  List.iter
    (fun (name, m) ->
      match Slicer.remove_checks m with
      | removed ->
          Alcotest.(check int)
            (name ^ ": all sinks gone")
            0
            (List.length (Slicer.discover removed))
      | exception Slicer.Error msg ->
          (* Acceptable: a descriptive refusal, not a bare Not_found. *)
          Alcotest.(check bool) (name ^ ": error is descriptive") true
            (String.length msg > 0)
      | exception Not_found ->
          Alcotest.failf "%s: remove_checks leaked Not_found" name)
    [
      ("shared condition", adv_shared_condition ());
      ("duplicate labels", adv_duplicate_labels ());
      ("redefined condition", adv_redefined_condition ());
      ("param condition", adv_param_condition ());
    ]

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_remove_after_instrument_is_identity_on_behavior =
  QCheck.Test.make ~name:"slicer: instrument;remove ~ baseline (events)" ~count:100
    QCheck.(pair (int_range 0 3) (int_range (-5) 5))
    (fun (idx, _salt) ->
      let base = heap_prog () in
      let inst = Inst.apply_exn [ San.asan ] base in
      let removed = Slicer.remove_checks inst in
      let r0 = run_main base [ Int64.of_int idx ] in
      let r1 = run_main removed [ Int64.of_int idx ] in
      Interp.events_equal r0 r1)

let prop_partial_removal_never_detects_more =
  QCheck.Test.make ~name:"slicer: removal never adds detections" ~count:60
    QCheck.(int_range 0 10)
    (fun idx ->
      let inst = Inst.apply_exn [ San.asan ] (heap_prog ()) in
      let removed = Slicer.remove_checks inst in
      let was_detected =
        match (run_main inst [ Int64.of_int idx ]).Interp.outcome with
        | Interp.Detected _ -> true
        | _ -> false
      in
      let now_detected =
        match (run_main removed [ Int64.of_int idx ]).Interp.outcome with
        | Interp.Detected _ -> true
        | _ -> false
      in
      (not now_detected) || was_detected)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "bunshin_slicer"
    [
      ( "discovery",
        [
          Alcotest.test_case "counts" `Quick test_discover_counts;
          Alcotest.test_case "identifies handler" `Quick test_discover_identifies_handler;
          Alcotest.test_case "ignores metadata" `Quick test_discover_ignores_metadata;
          Alcotest.test_case "per-function counts" `Quick test_per_function_counts;
        ] );
      ( "removal",
        [
          Alcotest.test_case "restores benign behaviour" `Quick test_remove_restores_benign_behavior;
          Alcotest.test_case "disables detection" `Quick test_remove_disables_detection;
          Alcotest.test_case "removes all sinks" `Quick test_remove_removes_all_sinks;
          Alcotest.test_case "keeps metadata" `Quick test_remove_keeps_metadata;
          Alcotest.test_case "instruction count" `Quick test_remove_instruction_count;
          Alcotest.test_case "selected functions only" `Quick test_remove_only_selected_functions;
          Alcotest.test_case "by handler" `Quick test_remove_by_handler;
          Alcotest.test_case "idempotent" `Quick test_remove_idempotent;
          Alcotest.test_case "union covers" `Quick test_check_distribution_union_covers;
          Alcotest.test_case "never leaks Not_found" `Quick test_remove_never_leaks_not_found;
        ] );
      ( "properties",
        qcheck
          [
            prop_remove_after_instrument_is_identity_on_behavior;
            prop_partial_removal_never_detects_more;
            prop_generated_pipeline_roundtrip;
            prop_generated_sink_counts;
          ] );
    ]
