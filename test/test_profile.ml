(* Overhead-attribution profiler: the accounting identity (phases sum to
   each variant's accounted thread time), straggler analysis, neutrality
   (attaching a collector never changes the NXE report), the serialization
   round-trip, the exporters, and the perf-regression gate. *)

open Bunshin
module E = Experiments
module Collector = Profile.Collector
module Json = Forensics.Json

let bzip2 () = Spec.find "bzip2"
let small_server () = Server.make Server.Lighttpd ~file_kb:1 ~connections:16 ~requests:40

(* ------------------------------------------------------------------ *)
(* The accounting identity: for every variant, the per-phase buckets must
   sum to the accounted thread time within 1% — nothing uncounted, nothing
   double-counted.  Checked on a CPU-bound and a server workload model. *)

let check_identity label (attr : Profile.attribution) =
  Alcotest.(check bool) (label ^ ": has variants") true (attr.Profile.at_variants <> []);
  List.iter
    (fun (v : Profile.variant_attr) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s v%d: thread time positive" label v.Profile.va_index)
        true
        (v.Profile.va_thread_time > 0.0);
      let err =
        Float.abs (v.Profile.va_phase_sum -. v.Profile.va_thread_time)
        /. v.Profile.va_thread_time
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s v%d: phase sum within 1%% (err %.5f)" label
           v.Profile.va_index err)
        true (err <= 0.01))
    attr.Profile.at_variants

let test_phases_sum_bzip2 () =
  let oa = E.overhead_attribution ~n:3 (bzip2 ()) in
  check_identity "bzip2" oa.E.oa_attr;
  (* A check-distribution group really does show sanitizer time. *)
  let sanitizer_total =
    List.fold_left
      (fun acc (v : Profile.variant_attr) ->
        acc +. List.assoc Profile.Phase.Sanitizer v.Profile.va_phases)
      0.0 oa.E.oa_attr.Profile.at_variants
  in
  Alcotest.(check bool) "sanitizer phase nonzero" true (sanitizer_total > 0.0)

let test_phases_sum_server () =
  let attr, report = E.attribution_run ~workload:"lighttpd" ~seed:E.ref_seed
      (List.init 3 (fun _ -> Program.baseline (small_server ()).Bench.prog))
  in
  Alcotest.(check bool) "server finished" true (report.Nxe.outcome = `All_finished);
  check_identity "lighttpd" attr;
  (* Servers sleep in the event loop: idle must be visible, and the NXE
     phases (publish/fetch/lockstep) must be nonzero under strict mode. *)
  let phase_total p =
    List.fold_left
      (fun acc (v : Profile.variant_attr) -> acc +. List.assoc p v.Profile.va_phases)
      0.0 attr.Profile.at_variants
  in
  Alcotest.(check bool) "idle nonzero" true (phase_total Profile.Phase.Idle > 0.0);
  Alcotest.(check bool) "publish nonzero" true (phase_total Profile.Phase.Publish > 0.0);
  Alcotest.(check bool) "fetch nonzero" true (phase_total Profile.Phase.Fetch > 0.0);
  Alcotest.(check bool) "syscall service nonzero" true
    (phase_total Profile.Phase.Syscall_service > 0.0)

(* ------------------------------------------------------------------ *)
(* Straggler analysis *)

let test_straggler_accounting () =
  let oa = E.overhead_attribution ~n:3 (bzip2 ()) in
  let attr = oa.E.oa_attr in
  Alcotest.(check bool) "sync points recorded" true (attr.Profile.at_sync_points > 0);
  (* Every rendezvous names exactly one straggler; the per-variant exact
     aggregates must add back up to the total, dropped ring or not. *)
  let count_sum =
    List.fold_left
      (fun acc (v : Profile.variant_attr) -> acc + v.Profile.va_straggler_count)
      0 attr.Profile.at_variants
  in
  Alcotest.(check int) "straggler counts sum to sync points" attr.Profile.at_sync_points
    count_sum;
  List.iter
    (fun (sp : Collector.sync_point) ->
      Alcotest.(check bool) "straggler in range" true
        (sp.Collector.sp_straggler >= 0 && sp.Collector.sp_straggler < attr.Profile.at_n);
      Alcotest.(check bool) "wait non-negative" true (sp.Collector.sp_wait >= 0.0))
    attr.Profile.at_recent;
  (* With per-variant compute skew, somebody other than the leader must be
     late at least once. *)
  let non_leader_straggles =
    List.exists
      (fun (v : Profile.variant_attr) ->
        v.Profile.va_index > 0 && v.Profile.va_straggler_count > 0)
      attr.Profile.at_variants
  in
  Alcotest.(check bool) "a follower straggles somewhere" true non_leader_straggles

let test_max_dominates () =
  (* The paper's compositing argument: group slowdown tracks the slowest
     variant's solo overhead, not the sum of all overheads. *)
  let oa = E.overhead_attribution ~n:3 (bzip2 ()) in
  Alcotest.(check bool) "sum strictly above max" true (oa.E.oa_sum_solo > oa.E.oa_max_solo);
  Alcotest.(check bool)
    (Printf.sprintf "max tracks group (group %.3f max %.3f sum %.3f)"
       oa.E.oa_group_overhead oa.E.oa_max_solo oa.E.oa_sum_solo)
    true oa.E.oa_max_tracks_group

(* ------------------------------------------------------------------ *)
(* Neutrality: attaching a collector is pure observation. *)

let test_report_bit_identical () =
  let builds = List.init 3 (fun _ -> Program.baseline (bzip2 ()).Bench.prog) in
  let run profile =
    Nxe.run_builds ~machine_config:E.desktop ?profile ~jitter:0.05 ~seed:E.ref_seed builds
  in
  let plain = run None in
  let collector = Collector.create 3 in
  let profiled = run (Some collector) in
  Alcotest.(check bool) "report bit-identical with profiling on" true (plain = profiled);
  Alcotest.(check bool) "collector saw the run" true (Collector.sync_points collector > 0)

let test_collector_validation () =
  Alcotest.check_raises "n must be >= 1" (Invalid_argument
    "Profile.Collector.create: need at least one variant") (fun () ->
      ignore (Collector.create 0));
  let c = Collector.create 2 in
  let builds = List.init 3 (fun _ -> Program.baseline (bzip2 ()).Bench.prog) in
  Alcotest.check_raises "variant count mismatch" (Invalid_argument
    "Nxe.run_traces: profile collector variant count mismatch") (fun () ->
      ignore (Nxe.run_builds ~profile:c ~seed:E.ref_seed builds))

let test_ring_overflow_counted () =
  let c = Collector.create ~capacity:4 2 in
  for i = 0 to 9 do
    Collector.record c ~chan:0 ~pos:i ~time:(float_of_int i) ~straggler:(i mod 2)
      ~wait:1.0
  done;
  Alcotest.(check int) "all recorded" 10 (Collector.sync_points c);
  Alcotest.(check int) "dropped = recorded - capacity" 6 (Collector.dropped c);
  let recent = Collector.recent c in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length recent);
  Alcotest.(check int) "oldest surviving first" 6
    (match recent with sp :: _ -> sp.Collector.sp_pos | [] -> -1)

(* ------------------------------------------------------------------ *)
(* Interpreter phase counts: engines agree, result unchanged. *)

let test_interp_phase_counts () =
  let ic = open_in "../examples/ir/overflow_demo.bir" in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let m = Ir_parser.parse_exn src in
  let instrumented =
    match Instrument.apply [ Sanitizer.asan ] m with
    | Ok m' -> m'
    | Error _ -> Alcotest.fail "instrumentation failed"
  in
  let args = [ 4L ] in
  let baseline = Interp.run instrumented ~entry:"main" ~args in
  let pc_fast = Interp.phase_counts () in
  let fast = Interp.run ~phases:pc_fast instrumented ~entry:"main" ~args in
  let pc_ref = Interp.phase_counts () in
  let refr = Interp.run_reference ~phases:pc_ref instrumented ~entry:"main" ~args in
  Alcotest.(check bool) "result unchanged by phases" true (baseline = fast);
  Alcotest.(check bool) "engines agree on run" true (fast = refr);
  Alcotest.(check int) "steps agree" pc_ref.Interp.pc_steps pc_fast.Interp.pc_steps;
  Alcotest.(check int) "checks agree" pc_ref.Interp.pc_checks pc_fast.Interp.pc_checks;
  Alcotest.(check int) "runtime agrees" pc_ref.Interp.pc_runtime pc_fast.Interp.pc_runtime;
  Alcotest.(check int) "syscalls agree" pc_ref.Interp.pc_syscalls pc_fast.Interp.pc_syscalls;
  Alcotest.(check bool) "sanitized run evaluates checks" true (pc_fast.Interp.pc_checks > 0);
  Alcotest.(check int) "steps recorded" fast.Interp.steps pc_fast.Interp.pc_steps

(* ------------------------------------------------------------------ *)
(* Serialization round-trip (satellite: to_string/of_string) *)

let test_profile_roundtrip () =
  let p =
    {
      Profile.prog_name = "bzip2";
      total_time = 1234.5625;
      by_func = [ ("compress", 800.25); ("sort", 300.0); ("io", 0.125) ];
    }
  in
  (match Profile.of_string (Profile.to_string p) with
   | Ok q ->
     Alcotest.(check string) "name" p.Profile.prog_name q.Profile.prog_name;
     Alcotest.(check (float 1e-6)) "total" p.Profile.total_time q.Profile.total_time;
     Alcotest.(check int) "funcs" 3 (List.length q.Profile.by_func);
     Alcotest.(check (float 1e-6)) "func value" 800.25
       (List.assoc "compress" q.Profile.by_func)
   | Error e -> Alcotest.fail e);
  (* Malformed inputs surface as Error, never exceptions. *)
  List.iter
    (fun (label, s) ->
      match Profile.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (label ^ ": expected parse error"))
    [
      ("garbage line", "program\tx\ntotal\t1.0\nwhat\tis\tthis\n");
      ("bad float", "program\tx\ntotal\tnot-a-number\n");
      ("missing header", "func\tf\t1.0\n");
      ("truncated func", "program\tx\ntotal\t1.0\nfunc\tonlyname\n");
    ]

(* ------------------------------------------------------------------ *)
(* Exporters *)

let small_attr () =
  let attr, _ = E.attribution_run ~workload:"bzip2" ~seed:E.ref_seed
      (List.init 2 (fun _ -> Program.baseline (bzip2 ()).Bench.prog))
  in
  attr

let test_json_exporter_shape () =
  let attr = small_attr () in
  match Json.parse (Profile.attribution_to_json attr) with
  | Error e -> Alcotest.fail ("attribution JSON does not parse: " ^ e)
  | Ok j ->
    let mem k = Json.member k j in
    Alcotest.(check bool) "workload" true (mem "workload" = Some (Json.Str "bzip2"));
    Alcotest.(check bool) "variants" true (mem "variants" = Some (Json.Num 2.0));
    (match mem "per_variant" with
     | Some (Json.Arr (v0 :: _ as vs)) ->
       Alcotest.(check int) "two variants" 2 (List.length vs);
       List.iter
         (fun k ->
           Alcotest.(check bool) ("per_variant has " ^ k) true
             (Json.member k v0 <> None))
         [ "index"; "name"; "wall_us"; "thread_time_us"; "cpu_us"; "straggler_count";
           "straggler_wait_us"; "phase_sum_us"; "phases" ];
       (match Json.member "phases" v0 with
        | Some (Json.Obj fields) ->
          List.iter
            (fun ph ->
              Alcotest.(check bool) ("phase key " ^ Profile.Phase.name ph) true
                (List.mem_assoc (Profile.Phase.name ph) fields))
            Profile.Phase.all
        | _ -> Alcotest.fail "phases not an object")
     | _ -> Alcotest.fail "per_variant missing");
    (match mem "recent_sync_points" with
     | Some (Json.Arr _) -> ()
     | _ -> Alcotest.fail "recent_sync_points missing")

let test_collapsed_exporter () =
  let attr = small_attr () in
  let lines = String.split_on_char '\n' (String.trim (Profile.attribution_collapsed attr)) in
  Alcotest.(check bool) "has lines" true (lines <> []);
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ stack; weight ] ->
        Alcotest.(check int) "stack depth 3" 3
          (List.length (String.split_on_char ';' stack));
        Alcotest.(check bool) ("integer weight: " ^ weight) true
          (match int_of_string_opt weight with Some w -> w > 0 | None -> false)
      | _ -> Alcotest.fail ("malformed collapsed line: " ^ line))
    lines

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_text_exporter () =
  let attr = small_attr () in
  let txt = Profile.attribution_to_text attr in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("text mentions " ^ needle) true (contains txt needle))
    [ "workload: bzip2"; "sync points:"; "straggler at"; "phase sum" ]

(* ------------------------------------------------------------------ *)
(* Perf-regression gate *)

let suites_a = [ ("bzip2", [ ("time_us", 100.0); ("steps", 5000.0) ]) ]

let thresholds =
  [ Gate.threshold ~tolerance:0.10 "time_us"; Gate.threshold ~tolerance:0.0 "steps" ]

let test_gate_clean_pass () =
  let doc = Gate.emit_json ~section:"interp" ~quick:false suites_a in
  match Gate.compare_json ~thresholds ~baseline:doc ~fresh:doc with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "identical run passes" true (Gate.passed r);
    Alcotest.(check int) "both metrics compared" 2 (List.length r.Gate.r_comparisons)

let test_gate_regression_detected () =
  let baseline = Gate.emit_json ~section:"interp" ~quick:false suites_a in
  let fresh =
    Gate.emit_json ~section:"interp" ~quick:false
      [ ("bzip2", [ ("time_us", 125.0); ("steps", 5000.0) ]) ]
  in
  match Gate.compare_json ~thresholds ~baseline ~fresh with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "25% over a 10% gate fails" false (Gate.passed r);
    (match r.Gate.r_regressions with
     | [ c ] ->
       Alcotest.(check string) "metric" "time_us" c.Gate.c_metric;
       Alcotest.(check (float 1e-9)) "ratio" 1.25 c.Gate.c_ratio
     | _ -> Alcotest.fail "expected exactly one regression");
    (* Within tolerance passes. *)
    let ok =
      Gate.emit_json ~section:"interp" ~quick:false
        [ ("bzip2", [ ("time_us", 109.0); ("steps", 5000.0) ]) ]
    in
    (match Gate.compare_json ~thresholds ~baseline ~fresh:ok with
     | Ok r -> Alcotest.(check bool) "9% under a 10% gate passes" true (Gate.passed r)
     | Error e -> Alcotest.fail e)

let test_gate_higher_is_better () =
  let th = [ Gate.threshold ~direction:Gate.Higher_is_better ~tolerance:0.05 "rate" ] in
  let b = Gate.emit_json ~section:"s" ~quick:false [ ("x", [ ("rate", 100.0) ]) ] in
  let worse = Gate.emit_json ~section:"s" ~quick:false [ ("x", [ ("rate", 80.0) ]) ] in
  let better = Gate.emit_json ~section:"s" ~quick:false [ ("x", [ ("rate", 120.0) ]) ] in
  (match Gate.compare_json ~thresholds:th ~baseline:b ~fresh:worse with
   | Ok r -> Alcotest.(check bool) "rate drop regresses" false (Gate.passed r)
   | Error e -> Alcotest.fail e);
  match Gate.compare_json ~thresholds:th ~baseline:b ~fresh:better with
  | Ok r -> Alcotest.(check bool) "rate gain passes" true (Gate.passed r)
  | Error e -> Alcotest.fail e

let test_gate_missing_and_mismatch () =
  let baseline = Gate.emit_json ~section:"interp" ~quick:false suites_a in
  (* A suite or metric vanishing from the fresh run is a failure, not a
     silent pass. *)
  let missing_metric =
    Gate.emit_json ~section:"interp" ~quick:false [ ("bzip2", [ ("steps", 5000.0) ]) ]
  in
  (match Gate.compare_json ~thresholds ~baseline ~fresh:missing_metric with
   | Ok r ->
     Alcotest.(check bool) "missing metric fails" false (Gate.passed r);
     Alcotest.(check bool) "named in missing" true
       (List.mem "bzip2.time_us" r.Gate.r_missing)
   | Error e -> Alcotest.fail e);
  let missing_suite = Gate.emit_json ~section:"interp" ~quick:false [] in
  (match Gate.compare_json ~thresholds ~baseline ~fresh:missing_suite with
   | Ok r -> Alcotest.(check bool) "missing suite fails" false (Gate.passed r)
   | Error e -> Alcotest.fail e);
  (* Quick-mode numbers are not comparable to full-mode numbers. *)
  let quick = Gate.emit_json ~section:"interp" ~quick:true suites_a in
  (match Gate.compare_json ~thresholds ~baseline ~fresh:quick with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "quick/full mismatch must error");
  (* Malformed inputs error out. *)
  (match Gate.compare_json ~thresholds ~baseline:"{nope" ~fresh:quick with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "malformed baseline must error");
  match Gate.compare_json ~thresholds ~baseline:"{\"suites\":[]}" ~fresh:baseline with
  | Error _ -> () (* missing schema_version *)
  | Ok _ -> Alcotest.fail "missing schema_version must error"

let () =
  Alcotest.run "profile"
    [
      ( "attribution",
        [
          Alcotest.test_case "phases sum, bzip2" `Quick test_phases_sum_bzip2;
          Alcotest.test_case "phases sum, server" `Quick test_phases_sum_server;
          Alcotest.test_case "straggler accounting" `Quick test_straggler_accounting;
          Alcotest.test_case "max dominates, not sum" `Quick test_max_dominates;
        ] );
      ( "neutrality",
        [
          Alcotest.test_case "report bit-identical" `Quick test_report_bit_identical;
          Alcotest.test_case "validation" `Quick test_collector_validation;
          Alcotest.test_case "ring overflow counted" `Quick test_ring_overflow_counted;
        ] );
      ( "interp",
        [ Alcotest.test_case "phase counts" `Quick test_interp_phase_counts ] );
      ( "serialization",
        [ Alcotest.test_case "round-trip and errors" `Quick test_profile_roundtrip ] );
      ( "exporters",
        [
          Alcotest.test_case "json shape" `Quick test_json_exporter_shape;
          Alcotest.test_case "collapsed stacks" `Quick test_collapsed_exporter;
          Alcotest.test_case "text report" `Quick test_text_exporter;
        ] );
      ( "gate",
        [
          Alcotest.test_case "clean pass" `Quick test_gate_clean_pass;
          Alcotest.test_case "regression detected" `Quick test_gate_regression_detected;
          Alcotest.test_case "higher is better" `Quick test_gate_higher_is_better;
          Alcotest.test_case "missing and mismatch" `Quick test_gate_missing_and_mismatch;
        ] );
    ]
