(* Tests for Bunshin_nxe: lockstep modes, divergence detection, execution
   groups, weak determinism, sanitizer-syscall tolerance. *)

module M = Bunshin_machine.Machine
module Sc = Bunshin_syscall.Syscall
module Trace = Bunshin_program.Trace
module Program = Bunshin_program.Program
module San = Bunshin_sanitizer.Sanitizer
module Cost = Bunshin_sanitizer.Cost_model
module Nxe = Bunshin_nxe.Nxe

let work c = Trace.Work { func = "f"; cost = c }
let wr ?(args = [ 1L; 64L ]) () = Trace.Sys (Sc.write ~args ())
let rd ?(args = [ 3L; 64L ]) () = Trace.Sys (Sc.read ~args ())

(* A CPU+syscall mix trace. *)
let basic_trace ?(units = 20) () =
  List.concat (List.init units (fun i -> [ work 50.0; wr ~args:[ 1L; Int64.of_int i ] () ]))

let names n = List.init n (fun i -> Printf.sprintf "v%d" i)

let run ?config ?machine_config n trace =
  Nxe.run_traces ?config ?machine_config ~names:(names n) (List.init n (fun _ -> trace))

let finished r = r.Nxe.outcome = `All_finished

let check_aborted msg r =
  Alcotest.(check bool) msg true
    (match r.Nxe.outcome with `Aborted _ -> true | `All_finished -> false)

(* ------------------------------------------------------------------ *)
(* Basic synchronization *)

let test_identical_variants_finish () =
  let r = run 3 (basic_trace ()) in
  Alcotest.(check bool) "all finished" true (finished r);
  Alcotest.(check int) "synced all writes" 20 r.Nxe.synced_syscalls;
  Alcotest.(check int) "one channel" 1 r.Nxe.channels

let test_single_variant_degenerates () =
  let r = run 1 (basic_trace ()) in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check bool) "time sane" true (r.Nxe.total_time >= 1000.0)

let test_sync_overhead_small () =
  (* NXE overhead over a solo run should be modest for a CPU-heavy trace. *)
  let trace = basic_trace ~units:50 () in
  let solo = run 1 trace in
  let nxe3 = run 3 trace in
  let oh =
    Bunshin_util.Stats.overhead ~baseline:solo.Nxe.total_time ~measured:nxe3.Nxe.total_time
  in
  Alcotest.(check bool) (Printf.sprintf "overhead %.3f < 0.5" oh) true (oh < 0.5);
  Alcotest.(check bool) "positive" true (oh > 0.0)

let test_selective_not_slower_than_strict () =
  (* A read-heavy trace: selective mode skips lockstep on reads. *)
  let trace =
    List.concat
      (List.init 40 (fun i -> [ work 10.0; rd ~args:[ 3L; Int64.of_int i ] () ]))
  in
  let strict = run ~config:Nxe.default_config 3 trace in
  let sel = run ~config:Nxe.selective 3 trace in
  Alcotest.(check bool) "both finish" true (finished strict && finished sel);
  Alcotest.(check bool)
    (Printf.sprintf "selective %.1f <= strict %.1f" sel.Nxe.total_time strict.Nxe.total_time)
    true
    (sel.Nxe.total_time <= strict.Nxe.total_time +. 1e-6)

let test_selective_still_locksteps_writes () =
  let trace = basic_trace () in
  let r = run ~config:Nxe.selective 3 trace in
  Alcotest.(check int) "all writes locksteped" 20 r.Nxe.lockstep_syscalls

let test_strict_locksteps_everything () =
  let trace = List.concat (List.init 10 (fun _ -> [ work 5.0; rd () ])) in
  let r = run ~config:Nxe.default_config 2 trace in
  Alcotest.(check int) "all synced locksteped" r.Nxe.synced_syscalls r.Nxe.lockstep_syscalls

(* ------------------------------------------------------------------ *)
(* Divergence detection *)

let test_argument_divergence_detected () =
  let leader = [ work 10.0; wr ~args:[ 1L; 42L ] () ] in
  let follower = [ work 10.0; wr ~args:[ 1L; 666L ] () ] in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  check_aborted "argument mismatch aborts" r;
  match r.Nxe.outcome with
  | `Aborted a ->
    Alcotest.(check int) "variant 1 diverged" 1 a.Nxe.al_variant;
    Alcotest.(check int) "at position 0" 0 a.Nxe.al_position;
    (* The alert names the offending syscall itself, not just a string. *)
    Alcotest.(check int) "channel id" 0 a.Nxe.al_channel;
    (match (a.Nxe.al_expected_sc, a.Nxe.al_got_sc) with
     | Some exp, Some got ->
       Alcotest.(check string) "expected syscall name" "write" exp.Sc.name;
       Alcotest.(check (list int64)) "expected args" [ 1L; 42L ] exp.Sc.args;
       Alcotest.(check string) "offending syscall name" "write" got.Sc.name;
       Alcotest.(check (list int64)) "offending args" [ 1L; 666L ] got.Sc.args
     | _ -> Alcotest.fail "alert should carry both syscalls")
  | `All_finished -> ()

let test_selective_alert_carries_syscalls () =
  (* Same content guarantee under selective lockstep: the write still
     locksteps, and the alert names both sides' syscalls. *)
  let leader = [ work 10.0; wr ~args:[ 1L; 42L ] () ] in
  let follower = [ work 10.0; wr ~args:[ 1L; 666L ] () ] in
  let r =
    Nxe.run_traces ~config:Nxe.selective ~names:(names 2) [ leader; follower ]
  in
  check_aborted "selective argument mismatch aborts" r;
  match r.Nxe.outcome with
  | `Aborted a ->
    Alcotest.(check int) "channel id" 0 a.Nxe.al_channel;
    (match a.Nxe.al_got_sc with
     | Some got ->
       Alcotest.(check string) "offending syscall name" "write" got.Sc.name;
       Alcotest.(check (list int64)) "offending args" [ 1L; 666L ] got.Sc.args
     | None -> Alcotest.fail "alert should carry the offending syscall")
  | `All_finished -> ()

let test_sequence_alert_syscall_content () =
  (* A follower's extra syscall: got is the extra call, expected is
     end-of-stream (None). *)
  let leader = [ work 10.0; wr ~args:[ 1L; 5L ] () ] in
  let follower = [ work 10.0; wr ~args:[ 1L; 5L ] (); rd ~args:[ 3L; 9L ] () ] in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  check_aborted "extra follower syscall aborts" r;
  match r.Nxe.outcome with
  | `Aborted a ->
    Alcotest.(check bool) "no expected syscall" true (a.Nxe.al_expected_sc = None);
    (match a.Nxe.al_got_sc with
     | Some got ->
       Alcotest.(check string) "extra syscall name" "read" got.Sc.name;
       Alcotest.(check (list int64)) "extra syscall args" [ 3L; 9L ] got.Sc.args
     | None -> Alcotest.fail "alert should carry the extra syscall")
  | `All_finished -> ()

let test_syscall_name_divergence_detected () =
  let leader = [ work 10.0; wr () ] in
  let follower = [ work 10.0; rd () ] in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  check_aborted "name mismatch aborts" r

let test_sequence_divergence_follower_extra () =
  let leader = [ work 10.0; wr () ] in
  let follower = [ work 10.0; wr (); wr () ] in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  check_aborted "extra follower syscall aborts" r

let test_sequence_divergence_leader_extra () =
  let leader = [ work 10.0; wr (); wr () ] in
  let follower = [ work 10.0; wr () ] in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  check_aborted "extra leader syscall aborts" r

let test_divergence_aborts_all_variants_quickly () =
  (* After the alert, the long tail of variant work is skipped. *)
  let tail = List.init 100 (fun _ -> work 100.0) in
  let leader = (work 1.0 :: wr ~args:[ 1L; 1L ] () :: tail) in
  let follower = (work 1.0 :: wr ~args:[ 1L; 2L ] () :: tail) in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  check_aborted "aborted" r;
  Alcotest.(check bool) "stopped early" true (r.Nxe.total_time < 5000.0)

let test_divergence_third_variant () =
  let good = [ work 5.0; wr ~args:[ 1L; 7L ] () ] in
  let bad = [ work 5.0; wr ~args:[ 1L; 8L ] () ] in
  let r = Nxe.run_traces ~names:(names 3) [ good; good; bad ] in
  check_aborted "aborted" r;
  match r.Nxe.outcome with
  | `Aborted a -> Alcotest.(check int) "variant 2" 2 a.Nxe.al_variant
  | `All_finished -> ()

(* ------------------------------------------------------------------ *)
(* Sanitizer-introduced syscalls (§3.3) *)

let test_memory_syscalls_not_compared () =
  (* One variant issues extra mmaps mid-stream (sanitizer metadata): no
     false alert. *)
  let leader = [ work 10.0; wr (); work 10.0; wr ~args:[ 1L; 2L ] () ] in
  let follower =
    [
      work 10.0;
      Trace.Sys (Sc.mmap ());
      wr ();
      Trace.Sys (Sc.munmap ());
      work 10.0;
      wr ~args:[ 1L; 2L ] ();
    ]
  in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  Alcotest.(check bool) "no false alert" true (finished r)

let test_vdso_not_synchronized () =
  let leader = [ work 10.0; Trace.Sys (Sc.gettimeofday_vdso ()); wr () ] in
  let follower = [ work 10.0; wr () ] in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  Alcotest.(check bool) "vdso ignored" true (finished r)

let test_pre_main_and_post_exit_not_synchronized () =
  (* Differently-sanitized builds: ASan variant scans /proc before main and
     writes a report at exit; baseline does neither.  The markers fence
     synchronization so no alert fires — the paper's empirical claim. *)
  let body = [ work 10.0; wr (); work 10.0 ] in
  let asan_like =
    [ Trace.Sys (Sc.make "openat"); Trace.Sys (Sc.read ()); Trace.Sys (Sc.mmap ()) ]
    @ (Trace.Marker Trace.Main_entered :: body)
    @ [ Trace.Marker Trace.About_to_exit; wr ~args:[ 2L; 999L ] () ]
  in
  let plain =
    (Trace.Marker Trace.Main_entered :: body) @ [ Trace.Marker Trace.About_to_exit ]
  in
  let r = Nxe.run_traces ~names:(names 2) [ asan_like; plain ] in
  Alcotest.(check bool) "no false alert across phases" true (finished r);
  Alcotest.(check int) "only the body write synced" 1 r.Nxe.synced_syscalls

let test_differently_sanitized_builds_no_false_alert () =
  (* Full pipeline check: the same program built with ASan, MSan and
     baseline produces synchronizable traces. *)
  let prog =
    {
      Program.name = "p";
      funcs = [ { Program.fn_name = "f"; fn_profile = Cost.typical_profile } ];
      working_set = 1.0;
      gen_trace =
        (fun _ ->
          List.concat
            (List.init 8 (fun i -> [ work 100.0; wr ~args:[ 1L; Int64.of_int i ] () ])));
    }
  in
  let builds =
    [ Program.full [ San.asan ] prog; Program.full [ San.msan ] prog; Program.baseline prog ]
  in
  let r = Nxe.run_builds ~seed:3 builds in
  Alcotest.(check bool) "no false alert" true (finished r)

(* ------------------------------------------------------------------ *)
(* Ring buffer and syscall gap *)

let test_strict_gap_at_most_one () =
  let r = run ~config:Nxe.default_config 3 (basic_trace ()) in
  Alcotest.(check bool) "gap <= 1" true (r.Nxe.max_syscall_gap <= 1)

(* Same syscall stream, follower computes 5x slower (e.g. a heavily
   instrumented variant): the leader runs ahead through the ring. *)
let asymmetric_traces () =
  let mk cost =
    List.concat (List.init 30 (fun i -> [ work cost; rd ~args:[ 3L; Int64.of_int i ] () ]))
  in
  [ mk 2.0; mk 10.0 ]

let test_selective_gap_can_grow () =
  let r =
    Nxe.run_traces
      ~config:{ Nxe.selective with ring_capacity = 16 }
      ~names:(names 2) (asymmetric_traces ())
  in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check bool)
    (Printf.sprintf "gap %d > 1" r.Nxe.max_syscall_gap)
    true (r.Nxe.max_syscall_gap > 1)

let test_ring_capacity_bounds_gap () =
  let r =
    Nxe.run_traces
      ~config:{ Nxe.selective with ring_capacity = 4 }
      ~names:(names 2) (asymmetric_traces ())
  in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check bool)
    (Printf.sprintf "gap %d <= 5" r.Nxe.max_syscall_gap)
    true (r.Nxe.max_syscall_gap <= 5)

let test_ring_capacity_validated () =
  (* Capacity <= 0 would deadlock on the first non-lockstep syscall
     (followers only consume released slots); it must be rejected at
     entry, not discovered as a hang. *)
  List.iter
    (fun cap ->
      List.iter
        (fun base ->
          Alcotest.check_raises
            (Printf.sprintf "capacity %d rejected" cap)
            (Invalid_argument "Nxe.run_traces: ring_capacity must be >= 1")
            (fun () ->
              ignore
                (Nxe.run_traces
                   ~config:{ base with Nxe.ring_capacity = cap }
                   ~names:(names 2)
                   [ basic_trace (); basic_trace () ])))
        [ Nxe.default_config; Nxe.selective ])
    [ 0; -3 ]

let test_capacity_one_tightest_ring () =
  (* Capacity 1: at most one unconsumed slot in flight.  The run-ahead gap
     sampled at publish can reach 2 (the just-published slot plus the one
     being consumed) but never beyond, and the group still finishes. *)
  let r =
    Nxe.run_traces
      ~config:{ Nxe.selective with ring_capacity = 1 }
      ~names:(names 2) (asymmetric_traces ())
  in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check bool)
    (Printf.sprintf "gap %d <= 2" r.Nxe.max_syscall_gap)
    true
    (r.Nxe.max_syscall_gap <= 2)

let test_strict_mode_keeps_slow_follower_close () =
  (* In strict mode the same asymmetric pair never drifts. *)
  let r = Nxe.run_traces ~config:Nxe.default_config ~names:(names 2) (asymmetric_traces ()) in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check bool) "gap <= 1" true (r.Nxe.max_syscall_gap <= 1)

(* ------------------------------------------------------------------ *)
(* Multithreading and execution groups *)

let mt_trace () =
  let worker tag =
    [
      work 20.0;
      Trace.Lock 0;
      work 5.0;
      Trace.Unlock 0;
      Trace.Sys (Sc.write ~args:[ 1L; tag ] ());
    ]
  in
  [ Trace.Spawn (worker 10L); Trace.Spawn (worker 20L) ] @ worker 0L

let test_multithreaded_channels () =
  let r = run 2 (mt_trace ()) in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check int) "three channels" 3 r.Nxe.channels;
  Alcotest.(check int) "three writes synced" 3 r.Nxe.synced_syscalls

let test_weak_determinism_replays () =
  let r = run 2 (mt_trace ()) in
  (* Leader records 3 lock acquisitions; 1 follower replays all 3. *)
  Alcotest.(check int) "order list" 3 r.Nxe.order_list_length;
  Alcotest.(check int) "replays" 3 r.Nxe.det_replays

let test_weak_determinism_off () =
  let cfg = { Nxe.default_config with weak_determinism = false } in
  let r = run ~config:cfg 2 (mt_trace ()) in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check int) "no ordering recorded" 0 r.Nxe.order_list_length

let test_weak_determinism_costs () =
  (* Lock-heavy trace: weak determinism should add measurable overhead
     (the ~8.5% of §3.3, magnitude depends on lock frequency). *)
  let lock_heavy =
    List.concat (List.init 50 (fun _ -> [ Trace.Lock 0; work 2.0; Trace.Unlock 0 ]))
  in
  let on = run 2 lock_heavy in
  let off = run ~config:{ Nxe.default_config with weak_determinism = false } 2 lock_heavy in
  Alcotest.(check bool) "costs more" true (on.Nxe.total_time > off.Nxe.total_time)

let test_barrier_participates () =
  let worker = [ work 5.0; Trace.Barrier (0, 3) ] in
  let trace = [ Trace.Spawn worker; Trace.Spawn worker ] @ worker in
  let r = run 2 trace in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check int) "3 barrier arrivals ordered" 3 r.Nxe.order_list_length

let test_fork_new_execution_group () =
  let child = [ work 10.0; wr ~args:[ 1L; 77L ] () ] in
  let trace = [ work 5.0; Trace.Fork child; work 5.0; wr ~args:[ 1L; 1L ] () ] in
  let r = run 2 trace in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check int) "parent + child channels" 2 r.Nxe.channels;
  Alcotest.(check int) "both writes synced" 2 r.Nxe.synced_syscalls

let test_fork_child_divergence_detected () =
  let child_ok = [ work 10.0; wr ~args:[ 1L; 77L ] () ] in
  let child_bad = [ work 10.0; wr ~args:[ 1L; 78L ] () ] in
  let leader = [ Trace.Fork child_ok; wr ~args:[ 1L; 1L ] () ] in
  let follower = [ Trace.Fork child_bad; wr ~args:[ 1L; 1L ] () ] in
  let r = Nxe.run_traces ~names:(names 2) [ leader; follower ] in
  check_aborted "child divergence aborts" r

let test_daemon_style_processes_independent () =
  (* Server pattern: children handle different "connections" concurrently;
     each child pair synchronizes on its own channel. *)
  let child i = [ work 10.0; wr ~args:[ 1L; Int64.of_int i ] () ] in
  let trace = List.init 4 (fun i -> Trace.Fork (child i)) @ [ work 1.0 ] in
  let r = run 3 trace in
  Alcotest.(check bool) "finished" true (finished r);
  Alcotest.(check int) "five channels" 5 r.Nxe.channels

(* ------------------------------------------------------------------ *)
(* Scalability shape *)

let test_more_variants_more_overhead () =
  let trace = basic_trace ~units:30 () in
  let mcfg cores = { M.default_config with cores; llc_capacity = 8.0 } in
  let time n =
    (Nxe.run_traces ~machine_config:(mcfg 12) ~working_sets:(List.init n (fun _ -> 4.0))
       ~names:(names n)
       (List.init n (fun _ -> trace)))
      .Nxe.total_time
  in
  let t2 = time 2 and t4 = time 4 and t8 = time 8 in
  Alcotest.(check bool) (Printf.sprintf "t2=%.0f <= t4=%.0f" t2 t4) true (t2 <= t4 +. 1e-6);
  Alcotest.(check bool) (Printf.sprintf "t4=%.0f <= t8=%.0f" t4 t8) true (t4 <= t8 +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Properties *)

(* Random structured traces: generate a tree of ops (work, syscalls,
   locks, barriers, spawns) and check the engine's liveness and
   no-false-positive guarantees on identical variants. *)
let gen_trace_ops =
  let open QCheck.Gen in
  let leaf =
    frequency
      [
        (4, map (fun c -> `Work (float_of_int (1 + c))) (int_bound 30));
        (2, map (fun i -> `Read i) (int_bound 100));
        (1, map (fun i -> `Write i) (int_bound 100));
        (2, map (fun l -> `Locked l) (int_bound 2));
      ]
  in
  list_size (1 -- 25) leaf

let trace_of_ops ?(spawn = false) ops =
  let body =
    List.concat_map
      (function
        | `Work c -> [ work c ]
        | `Read i -> [ rd ~args:[ 3L; Int64.of_int i ] () ]
        | `Write i -> [ wr ~args:[ 1L; Int64.of_int i ] () ]
        | `Locked l ->
          [ Trace.Lock l; Trace.Work { func = "crit"; cost = 1.0 }; Trace.Unlock l ])
      ops
  in
  if spawn then Trace.Spawn body :: body else body

let prop_random_traces_identical_clean =
  QCheck.Test.make ~name:"nxe: random identical variants stay clean" ~count:60
    (QCheck.make gen_trace_ops)
    (fun ops ->
      let t = trace_of_ops ops in
      let strict = run 3 t in
      let sel = run ~config:Nxe.selective 3 t in
      finished strict && finished sel)

let prop_random_threaded_traces_clean =
  QCheck.Test.make ~name:"nxe: random threaded variants stay clean" ~count:40
    (QCheck.make gen_trace_ops)
    (fun ops ->
      let t = trace_of_ops ~spawn:true ops in
      finished (run 2 t))

let prop_identical_variants_never_alert =
  QCheck.Test.make ~name:"nxe: identical variants never alert" ~count:40
    QCheck.(pair (int_range 1 4) (int_range 1 15))
    (fun (n, units) ->
      let trace =
        List.concat
          (List.init units (fun i -> [ work 5.0; wr ~args:[ 1L; Int64.of_int i ] () ]))
      in
      finished (run n trace))

let prop_divergent_args_always_alert =
  QCheck.Test.make ~name:"nxe: any arg difference alerts" ~count:40
    QCheck.(pair (int_range 0 9) small_int)
    (fun (pos, salt) ->
      let mk tag =
        List.concat
          (List.init 10 (fun i ->
               let v = if i = pos then tag else Int64.of_int i in
               [ work 2.0; wr ~args:[ 1L; v ] () ]))
      in
      let r =
        Nxe.run_traces ~names:(names 2)
          [ mk 1000L; mk (Int64.of_int (1001 + salt)) ]
      in
      match r.Nxe.outcome with `Aborted a -> a.Nxe.al_position = pos | `All_finished -> false)

(* Strict and selective lockstep must reach the same divergence verdict on
   the same traces (first slice of the protocol-invariant work, ROADMAP
   item 5): selective mode changes WHEN the leader may run ahead, never
   WHAT counts as a divergence, so an injected argument mutation aborts
   both modes at the same (channel, position, variant) — and a clean
   corpus aborts neither. *)
let mutate_kth_syscall ~k ~delta trace =
  let seen = ref 0 in
  List.map
    (function
      | Trace.Sys sc when sc.Sc.args <> [] ->
        let here = !seen in
        incr seen;
        if here = k then
          let args =
            match sc.Sc.args with a :: x :: rest -> a :: Int64.add x delta :: rest | l -> l
          in
          Trace.Sys (Sc.make ~args sc.Sc.name)
        else Trace.Sys sc
      | op -> op)
    trace

let verdict r =
  match r.Nxe.outcome with
  | `All_finished -> None
  | `Aborted a -> Some (a.Nxe.al_channel, a.Nxe.al_position, a.Nxe.al_variant)

let prop_strict_selective_same_verdict =
  QCheck.Test.make ~name:"nxe: strict and selective agree on the verdict" ~count:60
    QCheck.(triple (QCheck.make gen_trace_ops) (int_range 0 20) bool)
    (fun (ops, k, clean) ->
      let base = trace_of_ops ops in
      let follower = if clean then base else mutate_kth_syscall ~k ~delta:500L base in
      let run cfg = Nxe.run_traces ~config:cfg ~names:(names 2) [ base; follower ] in
      let s = verdict (run Nxe.default_config) in
      let l = verdict (run Nxe.selective) in
      s = l)

let qcheck tests = List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests

let () =
  Alcotest.run "bunshin_nxe"
    [
      ( "sync",
        [
          Alcotest.test_case "identical variants finish" `Quick test_identical_variants_finish;
          Alcotest.test_case "single variant" `Quick test_single_variant_degenerates;
          Alcotest.test_case "sync overhead small" `Quick test_sync_overhead_small;
          Alcotest.test_case "selective <= strict" `Quick test_selective_not_slower_than_strict;
          Alcotest.test_case "selective locksteps writes" `Quick test_selective_still_locksteps_writes;
          Alcotest.test_case "strict locksteps everything" `Quick test_strict_locksteps_everything;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "argument divergence" `Quick test_argument_divergence_detected;
          Alcotest.test_case "selective alert carries syscalls" `Quick
            test_selective_alert_carries_syscalls;
          Alcotest.test_case "sequence alert syscall content" `Quick
            test_sequence_alert_syscall_content;
          Alcotest.test_case "name divergence" `Quick test_syscall_name_divergence_detected;
          Alcotest.test_case "follower extra syscall" `Quick test_sequence_divergence_follower_extra;
          Alcotest.test_case "leader extra syscall" `Quick test_sequence_divergence_leader_extra;
          Alcotest.test_case "abort stops all" `Quick test_divergence_aborts_all_variants_quickly;
          Alcotest.test_case "third variant blamed" `Quick test_divergence_third_variant;
        ] );
      ( "sanitizer-syscalls",
        [
          Alcotest.test_case "memory class ignored" `Quick test_memory_syscalls_not_compared;
          Alcotest.test_case "vdso ignored" `Quick test_vdso_not_synchronized;
          Alcotest.test_case "pre-main/post-exit fenced" `Quick test_pre_main_and_post_exit_not_synchronized;
          Alcotest.test_case "different sanitizers no alert" `Quick test_differently_sanitized_builds_no_false_alert;
        ] );
      ( "ring",
        [
          Alcotest.test_case "strict gap <= 1" `Quick test_strict_gap_at_most_one;
          Alcotest.test_case "selective gap grows" `Quick test_selective_gap_can_grow;
          Alcotest.test_case "capacity bounds gap" `Quick test_ring_capacity_bounds_gap;
          Alcotest.test_case "capacity <= 0 rejected" `Quick test_ring_capacity_validated;
          Alcotest.test_case "capacity 1 tightest ring" `Quick test_capacity_one_tightest_ring;
          Alcotest.test_case "strict keeps follower close" `Quick test_strict_mode_keeps_slow_follower_close;
        ] );
      ( "groups",
        [
          Alcotest.test_case "multithreaded channels" `Quick test_multithreaded_channels;
          Alcotest.test_case "weak determinism replays" `Quick test_weak_determinism_replays;
          Alcotest.test_case "weak determinism off" `Quick test_weak_determinism_off;
          Alcotest.test_case "weak determinism costs" `Quick test_weak_determinism_costs;
          Alcotest.test_case "barrier participates" `Quick test_barrier_participates;
          Alcotest.test_case "fork new group" `Quick test_fork_new_execution_group;
          Alcotest.test_case "fork child divergence" `Quick test_fork_child_divergence_detected;
          Alcotest.test_case "daemon children independent" `Quick test_daemon_style_processes_independent;
        ] );
      ("scalability", [ Alcotest.test_case "monotone in N" `Quick test_more_variants_more_overhead ]);
      ( "properties",
        qcheck
          [
            prop_identical_variants_never_alert;
            prop_divergent_args_always_alert;
            prop_random_traces_identical_clean;
            prop_random_threaded_traces_clean;
            prop_strict_selective_same_verdict;
          ] );
    ]
